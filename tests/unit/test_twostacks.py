"""Unit tests for TwoStacks."""

from __future__ import annotations

import pytest

from repro.baselines.recalc import RecalcAggregator
from repro.baselines.twostacks import TwoStacksAggregator
from repro.errors import WindowStateError
from repro.operators.instrumented import CountingOperator, SlideOpRecorder
from repro.operators.invertible import SumOperator
from repro.operators.noninvertible import MaxOperator
from tests.conftest import int_stream


def test_matches_recalc():
    stream = int_stream(300, seed=31)
    for window in (1, 2, 5, 16, 33):
        assert (
            TwoStacksAggregator(MaxOperator(), window).run(stream)
            == RecalcAggregator(MaxOperator(), window).run(stream)
        )


def test_flip_happens_once_per_window_iteration():
    window = 16
    agg = TwoStacksAggregator(SumOperator(), window)
    for value in int_stream(10 * window, seed=32):
        agg.step(value)
    # One flip per n evictions (plus at most one during warm-up).
    assert 8 <= agg.flips <= 11


def test_flip_spike_is_n_ops():
    window = 32
    op = CountingOperator(SumOperator())
    agg = TwoStacksAggregator(op, window)
    rec = SlideOpRecorder(op)
    for value in int_stream(window * 10, seed=33):
        agg.step(value)
        rec.mark_slide()
    steady = rec.per_slide[2 * window:]
    assert max(steady) >= window  # the flip slide
    amortized = sum(steady) / len(steady)
    assert amortized < 3.5  # Table 1: amortized 3


def test_size_never_exceeds_window():
    agg = TwoStacksAggregator(MaxOperator(), 8)
    for value in int_stream(100, seed=34):
        agg.push(value)
        assert len(agg) <= 8


def test_evict_from_empty_raises():
    agg = TwoStacksAggregator(MaxOperator(), 4)
    with pytest.raises(WindowStateError):
        agg.evict()


def test_query_empty_window_is_identity():
    agg = TwoStacksAggregator(SumOperator(), 4)
    assert agg.query() == 0


def test_non_commutative_order():
    class Concat(MaxOperator):
        name = "concat"
        commutative = False
        selects = False

        @property
        def identity(self):
            return ""

        def lift(self, value):
            return str(value)

        def combine(self, older, newer):
            return older + newer

    agg = TwoStacksAggregator(Concat(), 3)
    expected = RecalcAggregator(Concat(), 3)
    for value in "abcdefg":
        assert agg.step(value) == expected.step(value)


def test_memory_is_2n():
    assert TwoStacksAggregator(SumOperator(), 21).memory_words() == 42


def test_no_multi_query_support():
    assert not TwoStacksAggregator.supports_multi_query
