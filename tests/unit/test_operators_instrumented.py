"""Unit tests for the operation-counting instrumentation."""

from __future__ import annotations

import pytest

from repro.operators.instrumented import CountingOperator, SlideOpRecorder
from repro.operators.invertible import SumOperator
from repro.operators.noninvertible import MaxOperator


def test_counts_combines_and_inverses_separately():
    op = CountingOperator(SumOperator())
    op.combine(1, 2)
    op.combine(1, 2)
    op.inverse(3, 2)
    assert op.combines == 2
    assert op.inverses == 1
    assert op.ops == 3


def test_reset():
    op = CountingOperator(SumOperator())
    op.combine(1, 2)
    op.reset()
    assert op.ops == 0


def test_transparent_delegation():
    op = CountingOperator(SumOperator())
    assert op.identity == 0
    assert op.lift(5) == 5
    assert op.lower(5) == 5
    assert op.combine(2, 3) == 5
    assert op.inverse(5, 3) == 2


def test_flags_mirror_inner():
    counting_sum = CountingOperator(SumOperator())
    assert counting_sum.invertible and not counting_sum.selects
    counting_max = CountingOperator(MaxOperator())
    assert counting_max.selects and not counting_max.invertible


def test_dominates_charges_exactly_one_combine():
    op = CountingOperator(MaxOperator())
    assert op.dominates(1, 2)
    assert op.ops == 1


def test_inverse_on_noninvertible_inner_raises():
    op = CountingOperator(MaxOperator())
    with pytest.raises(AttributeError):
        op.inverse(5, 3)


class TestSlideOpRecorder:
    def test_per_slide_deltas(self):
        op = CountingOperator(SumOperator())
        rec = SlideOpRecorder(op)
        op.combine(1, 1)
        assert rec.mark_slide() == 1
        op.combine(1, 1)
        op.combine(1, 1)
        assert rec.mark_slide() == 2
        assert rec.mark_slide() == 0
        assert rec.per_slide == [1, 2, 0]
        assert rec.slides == 3
        assert rec.total_ops == 3
        assert rec.amortized_ops == 1.0
        assert rec.worst_case_ops == 2

    def test_empty_recorder(self):
        rec = SlideOpRecorder(CountingOperator(SumOperator()))
        assert rec.amortized_ops == 0.0
        assert rec.worst_case_ops == 0

    def test_ignores_ops_before_attachment(self):
        op = CountingOperator(SumOperator())
        op.combine(1, 1)
        rec = SlideOpRecorder(op)
        assert rec.mark_slide() == 0
