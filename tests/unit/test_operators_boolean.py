"""Unit tests for the boolean and bitwise operators."""

from __future__ import annotations

import random

import pytest

from repro.baselines.recalc import RecalcAggregator
from repro.core.facade import make_slickdeque
from repro.errors import InvalidOperatorError
from repro.operators.boolean import (
    BitAndOperator,
    BitOrOperator,
    BoolAllOperator,
    BoolAnyOperator,
)
from repro.operators.base import AggregateOperator
from repro.registry import get_algorithm


class TestBoolAll:
    def test_fold(self):
        op = BoolAllOperator()
        assert op.fold([True, True, True]) is True
        assert op.fold([True, False, True]) is False
        assert op.fold([]) is True  # identity

    def test_selection_semantics(self):
        op = BoolAllOperator()
        for a in (False, True):
            for b in (False, True):
                assert op.combine(a, b) in (a, b)

    def test_dominates_matches_combine(self):
        op = BoolAllOperator()
        base = AggregateOperator.dominates
        for a in (False, True):
            for b in (False, True):
                assert op.dominates(a, b) == base(op, a, b)

    def test_lift_coerces(self):
        assert BoolAllOperator().lift(0) is False
        assert BoolAllOperator().lift(17) is True


class TestBoolAny:
    def test_fold(self):
        op = BoolAnyOperator()
        assert op.fold([False, False]) is False
        assert op.fold([False, True, False]) is True
        assert op.fold([]) is False

    def test_dominates_matches_combine(self):
        op = BoolAnyOperator()
        base = AggregateOperator.dominates
        for a in (False, True):
            for b in (False, True):
                assert op.dominates(a, b) == base(op, a, b)


class TestSlidingBooleans:
    def test_all_algorithms_agree_on_bool_windows(self):
        rng = random.Random(3)
        stream = [rng.random() < 0.8 for _ in range(300)]
        for op_class in (BoolAllOperator, BoolAnyOperator):
            expected = RecalcAggregator(op_class(), 8).run(stream)
            for name in ("naive", "flatfat", "twostacks", "daba",
                         "slickdeque"):
                spec = get_algorithm(name)
                got = spec.single(op_class(), 8).run(stream)
                assert got == expected, (op_class.__name__, name)

    def test_deque_occupancy_stays_tiny(self):
        """For AND, only the Falses (plus one head) survive pops."""
        window = make_slickdeque(BoolAllOperator(), 100)
        stream = [True] * 50 + [False] + [True] * 49
        for value in stream:
            window.push(value)
        assert window.occupancy <= 2


class TestBitwise:
    def test_fold(self):
        assert BitAndOperator().fold([0b1110, 0b0111]) == 0b0110
        assert BitOrOperator().fold([0b1000, 0b0011]) == 0b1011

    def test_identities(self):
        assert BitAndOperator().combine(-1, 42) == 42
        assert BitOrOperator().combine(0, 42) == 42

    def test_not_selection_type(self):
        op = BitAndOperator()
        assert not op.selects
        assert op.combine(5, 3) not in (5, 3)

    def test_slickdeque_refuses_bitwise(self):
        """§3.1 boundary: the deque needs x ⊕ y ∈ {x, y}."""
        with pytest.raises(InvalidOperatorError):
            make_slickdeque(BitAndOperator(), 8)

    def test_tree_baselines_handle_bitwise(self):
        rng = random.Random(5)
        stream = [rng.randrange(256) for _ in range(200)]
        for op_class in (BitAndOperator, BitOrOperator):
            expected = RecalcAggregator(op_class(), 16).run(stream)
            for name in ("naive", "flatfat", "bint", "flatfit",
                         "twostacks", "daba"):
                spec = get_algorithm(name)
                assert spec.single(op_class(), 16).run(stream) == (
                    expected
                ), (op_class.__name__, name)
