"""Unit tests for the batch-kernel registry and its exactness contract."""

from __future__ import annotations

import math
import random

import pytest

from repro.kernels import (
    BatchKernel,
    active_backends,
    as_sequence,
    exact_fold,
    kernel_for,
    lift_is_identity,
    numpy_enabled,
)
from repro.kernels.pure import (
    CountKernel,
    MaxKernel,
    MinKernel,
    ProductKernel,
    SumKernel,
)
from repro.operators.instrumented import CountingOperator
from repro.operators.invertible import SumOperator
from repro.operators.registry import get_operator

np = pytest.importorskip("numpy") if numpy_enabled() else None


def _sequential_fold(operator, values, seed):
    acc = seed
    for value in values:
        acc = operator.combine(acc, operator.lift(value))
    return acc


def test_active_backends_always_includes_pure():
    backends = active_backends()
    assert backends[0] == "pure"
    assert ("numpy" in backends) == numpy_enabled()


def test_kernel_cached_on_the_operator_instance():
    operator = get_operator("sum")
    assert kernel_for(operator) is kernel_for(operator)
    other = get_operator("sum")
    assert kernel_for(other) is not kernel_for(operator)


def test_builtin_operators_get_specialised_kernels():
    expected_pure = {
        "count": CountKernel,
        "int_product": ProductKernel,
        "alpha_max": MaxKernel,
    }
    for name, kernel_class in expected_pure.items():
        assert isinstance(kernel_for(get_operator(name)), kernel_class)
    # sum/max/min get the numpy layer when it registered, pure otherwise.
    sum_kernel = kernel_for(get_operator("sum"))
    if numpy_enabled():
        assert type(sum_kernel).__name__ == "NumpySumKernel"
    else:
        assert isinstance(sum_kernel, SumKernel)


def test_unregistered_operators_fall_back_to_the_generic_kernel():
    for name in ("mean", "variance", "first", "last", "argmax_cos"):
        kernel = kernel_for(get_operator(name))
        assert type(kernel) is BatchKernel, name


def test_type_guard_rejects_name_squatting_operators():
    """A custom operator reusing a builtin name must not inherit the
    builtin kernel's arithmetic."""

    class FakeSum(SumOperator):
        name = "max"  # squat on the max registry slot

    kernel = kernel_for(FakeSum())
    assert type(kernel) is BatchKernel


def test_counting_wrapper_gets_its_own_generic_kernel():
    counting = CountingOperator(get_operator("sum"))
    kernel = kernel_for(counting)
    assert type(kernel) is BatchKernel
    before = counting.ops
    kernel.fold([1, 2, 3], counting.identity)
    assert counting.ops >= before + 3  # instrumentation still counts


def test_pure_folds_are_bit_identical_to_sequential_folds():
    rng = random.Random(3)
    for name in ("sum", "count", "int_product", "sum_of_squares",
                 "max", "min", "first", "last", "mean", "variance"):
        operator = get_operator(name)
        kernel = kernel_for(operator)
        for _ in range(40):
            values = [rng.uniform(-50, 50) for _ in range(rng.randint(0, 60))]
            seed = operator.identity
            assert exact_fold(operator, values, seed) == _sequential_fold(
                operator, values, seed
            ), name


def test_exact_fold_routes_float_arrays_around_inexact_kernels():
    if not numpy_enabled():
        pytest.skip("numpy backend not registered")
    operator = get_operator("sum")
    kernel = kernel_for(operator)
    values = np.array([0.1 * i for i in range(1, 200)])
    assert not kernel.exact
    assert not kernel.is_exact_for(values)
    assert exact_fold(operator, values, 0.0) == _sequential_fold(
        operator, values.tolist(), 0.0
    )


def test_numpy_selection_kernels_stay_exact_on_float_arrays():
    if not numpy_enabled():
        pytest.skip("numpy backend not registered")
    operator = get_operator("max")
    kernel = kernel_for(operator)
    values = np.array([3.5, -1.0, 3.5, 2.0])
    assert kernel.exact
    result = kernel.fold(values, operator.identity)
    assert result == 3.5 and isinstance(result, float)


def test_suffix_chain_matches_brute_force_survival():
    rng = random.Random(5)
    for name in ("max", "min", "first", "last", "argmax_cos"):
        operator = get_operator(name)
        kernel = kernel_for(operator)
        for _ in range(60):
            values = [rng.uniform(-3, 3) for _ in range(rng.randint(1, 30))]
            chain = kernel.suffix_chain(values)
            survivors = []
            for index, value in enumerate(values):
                agg = operator.lift(value)
                dominated = any(
                    operator.dominates(agg, operator.lift(later))
                    for later in values[index + 1:]
                )
                if not dominated:
                    survivors.append((index, agg))
            assert chain == survivors, name


def test_integer_ndarrays_avoid_fixed_width_overflow():
    if not numpy_enabled():
        pytest.skip("numpy backend not registered")
    operator = get_operator("int_product")
    values = np.full(50, 40, dtype=np.int64)  # 40**50 overflows int64
    result = exact_fold(operator, values, operator.identity)
    assert operator.lower(result) == 40**50


def test_lift_many_is_zero_copy_for_identity_lifts():
    operator = get_operator("sum")
    assert lift_is_identity(operator)
    values = [1, 2, 3]
    assert kernel_for(operator).lift_many(values) is values


def test_as_sequence_materialises_generators_once():
    generated = as_sequence(v for v in range(5))
    assert list(generated) == [0, 1, 2, 3, 4]
    concrete = [1, 2]
    assert as_sequence(concrete) is concrete


def test_geometric_mean_answers_match_per_tuple_within_ulps():
    """Float-transcendental lifts reassociate under telescoping; the
    bulk answer must agree to ulp precision (docs/performance.md)."""
    from repro.core.slickdeque_inv import SlickDequeInv

    rng = random.Random(9)
    stream = [rng.randint(1, 60) for _ in range(300)]
    ref = SlickDequeInv(get_operator("geometric_mean"), 16)
    bulk = SlickDequeInv(get_operator("geometric_mean"), 16)
    for value in stream:
        ref.push(value)
    bulk.push_many(stream)
    assert math.isclose(ref.query(), bulk.query(), rel_tol=1e-12)
