"""Unit tests for the First/Last positional operators."""

from __future__ import annotations

import pytest

from repro.baselines.recalc import RecalcAggregator
from repro.core.facade import make_slickdeque
from repro.operators.base import AggregateOperator
from repro.operators.positional import FirstOperator, LastOperator
from repro.registry import available_algorithms, get_algorithm
from tests.conftest import int_stream


class TestSemantics:
    def test_first_fold(self):
        assert FirstOperator().fold([7, 1, 9]) == 7

    def test_last_fold(self):
        assert LastOperator().fold([7, 1, 9]) == 9

    def test_identity_laws(self):
        for op in (FirstOperator(), LastOperator()):
            assert op.combine(op.identity, 5) == 5
            assert op.combine(5, op.identity) == 5

    def test_associativity_exhaustive(self):
        for op in (FirstOperator(), LastOperator()):
            for a in (1, 2):
                for b in (1, 3):
                    for c in (2, 4):
                        assert op.combine(op.combine(a, b), c) == (
                            op.combine(a, op.combine(b, c))
                        )

    def test_non_commutative(self):
        assert FirstOperator().combine(1, 2) != (
            FirstOperator().combine(2, 1)
        )

    def test_dominates_matches_combine(self):
        base = AggregateOperator.dominates
        for op in (FirstOperator(), LastOperator()):
            for incumbent in (1, 2):
                for challenger in (1, 3):
                    assert op.dominates(incumbent, challenger) == (
                        base(op, incumbent, challenger)
                    ), op.name


class TestSliding:
    def test_first_is_the_oldest_in_window(self):
        window = make_slickdeque(FirstOperator(), 3)
        stream = [10, 20, 30, 40, 50]
        assert window.run(stream) == [10, 10, 10, 20, 30]

    def test_last_is_the_newest(self):
        window = make_slickdeque(LastOperator(), 3)
        stream = [10, 20, 30, 40]
        assert window.run(stream) == stream

    def test_extreme_deque_occupancies(self):
        first = make_slickdeque(FirstOperator(), 16)
        last = make_slickdeque(LastOperator(), 16)
        for value in range(100):
            first.push(value)
            last.push(value)
        assert first.occupancy == 16  # §4.1 worst space, every input
        assert last.occupancy == 1  # §4.1 best case, every input

    @pytest.mark.parametrize("op_class", [FirstOperator, LastOperator])
    def test_all_algorithms_agree(self, op_class):
        stream = int_stream(200, seed=83)
        expected = RecalcAggregator(op_class(), 7).run(stream)
        for name in available_algorithms():
            spec = get_algorithm(name)
            got = spec.single(op_class(), 7).run(stream)
            assert got == expected, name
