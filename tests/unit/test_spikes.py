"""Unit tests for the spike-analysis helpers."""

from __future__ import annotations

from repro.metrics.spikes import (
    SpikeProfile,
    dominant_period,
    flip_period,
    spike_gaps,
    spike_positions,
)


def test_spike_positions_threshold_on_median():
    series = [1, 1, 1, 10, 1, 1, 1, 10, 1]
    assert spike_positions(series, threshold_ratio=4.0) == [3, 7]


def test_spike_positions_flat_series_has_none():
    assert spike_positions([5] * 20) == []


def test_spike_positions_empty():
    assert spike_positions([]) == []


def test_spike_gaps_and_period():
    positions = [3, 11, 19, 27]
    assert spike_gaps(positions) == [8, 8, 8]
    assert dominant_period(positions) == 8


def test_dominant_period_requires_two_spikes():
    assert dominant_period([5]) is None
    assert dominant_period([]) is None


def test_profile_periodic_detection():
    series = [1] * 40
    for index in (5, 13, 21, 29, 37):
        series[index] = 30
    profile = SpikeProfile.of(series)
    assert profile.spike_count == 5
    assert profile.period == 8
    assert profile.periodic


def test_profile_aperiodic_detection():
    series = [1] * 40
    for index in (3, 9, 25, 30):
        series[index] = 30
    profile = SpikeProfile.of(series)
    assert not profile.periodic


def test_profile_tolerates_jitter():
    series = [1] * 40
    for index in (5, 13, 22, 30):  # gaps 8, 9, 8
        series[index] = 30
    profile = SpikeProfile.of(series, period_tolerance=1)
    assert profile.periodic


def test_max_over_median():
    profile = SpikeProfile.of([2, 2, 2, 20])
    assert profile.max_over_median == 10.0


def test_flip_period_convenience():
    series = [1] * 30
    for index in (4, 14, 24):
        series[index] = 50
    period, periodic = flip_period(series)
    assert (period, periodic) == (10, True)
