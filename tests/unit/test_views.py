"""Unit tests for the operator views (raw / partial / slices)."""

from __future__ import annotations

from repro.operators.algebraic import ComposedOperator, range_operator
from repro.operators.invertible import CountOperator, SumOperator
from repro.operators.noninvertible import MaxOperator
from repro.operators.algebraic import mean_operator
from repro.operators.views import (
    ComponentSlice,
    PartialView,
    RawView,
    partial_view,
    raw_view,
)


class TestRawView:
    def test_keeps_aggregates_raw(self):
        view = raw_view(mean_operator())
        lifted = view.lift(4.0)
        assert lifted == (4.0, 1)  # (sum, count), not finalized
        assert view.lower(lifted) == (4.0, 1)

    def test_flags_mirror_inner(self):
        assert raw_view(SumOperator()).invertible
        assert raw_view(MaxOperator()).selects
        assert not raw_view(MaxOperator()).invertible

    def test_idempotent(self):
        view = raw_view(SumOperator())
        assert raw_view(view) is view

    def test_inverse_delegates(self):
        view = raw_view(SumOperator())
        assert view.inverse(5, 3) == 2

    def test_dominates_delegates(self):
        view = raw_view(MaxOperator())
        assert view.dominates(3, 5)
        assert not view.dominates(5, 3)


class TestPartialView:
    def test_skips_lift(self):
        view = partial_view(CountOperator())
        # Input is an already-lifted count; lifting again would reset
        # it to 1.
        assert view.lift(7) == 7
        assert view.combine(7, 3) == 10

    def test_identity_matches_inner(self):
        view = partial_view(CountOperator())
        assert view.identity == 0


class TestComposedPartialView:
    def test_noninvertible_composition_keeps_components(self):
        view = partial_view(range_operator())
        assert isinstance(view, ComposedOperator)
        assert len(view.components) == 2
        assert all(
            isinstance(c, ComponentSlice) for c in view.components
        )

    def test_slices_select_their_slot(self):
        view = partial_view(range_operator())
        max_slice, min_slice = view.components
        assert max_slice.lift((9, 2)) == 9
        assert min_slice.lift((9, 2)) == 2
        assert max_slice.selects and min_slice.selects

    def test_lower_defers_finalizer(self):
        view = partial_view(range_operator())
        # lower returns the component tuple; the real operator's lower
        # finalizes it.
        agg = view.combine(view.lift((5, 1)), view.lift((9, 3)))
        assert view.lower(agg) == (9, 1)
        assert range_operator().lower(view.lower(agg)) == 8

    def test_invertible_composition_stays_plain_partial_view(self):
        view = partial_view(mean_operator())
        assert isinstance(view, PartialView)
        assert view.invertible
