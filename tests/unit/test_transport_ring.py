"""Unit tests for the SPSC shared-memory ring.

The ring is the bottom layer of the zero-copy data plane: everything
above it (frame codec, shard channels, supervisor wiring) assumes the
exact read-then-commit protocol and wraparound behaviour checked here.
"""

from __future__ import annotations

import pickle

import pytest

from repro.errors import TornFrameError, TransportError
from repro.service.transport import shm_supported
from repro.service.transport.ring import SpscRing

pytestmark = pytest.mark.skipif(
    not shm_supported(),
    reason="multiprocessing.shared_memory or fork unavailable",
)


@pytest.fixture
def ring():
    ring = SpscRing(capacity=256)
    yield ring
    ring.close()
    ring.unlink()


def test_round_trip_preserves_payload_bytes(ring):
    payloads = [b"alpha", b"", b"\x00" * 40, bytes(range(64))]
    for payload in payloads:
        assert ring.try_write(payload)
        view = ring.try_read()
        assert view is not None
        assert bytes(view) == payload
        view.release()
        ring.commit()
    assert ring.try_read() is None


def test_empty_ring_reads_none(ring):
    assert ring.try_read() is None
    assert ring.occupancy() == 0
    assert ring.occupancy_ratio() == 0.0


def test_fills_and_recovers_capacity(ring):
    writes = 0
    while ring.try_write(b"x" * 20):
        writes += 1
    assert writes > 0
    # Full: no further writes until the consumer commits.
    assert not ring.try_write(b"x" * 20)
    view = ring.try_read()
    assert view is not None
    view.release()
    ring.commit()
    assert ring.try_write(b"x" * 20)


def test_wraparound_many_times_preserves_order(ring):
    # Far more traffic than capacity forces repeated wraparound; a
    # sequence number in each payload catches reordering or loss.
    inflight = []
    sent = received = 0
    while received < 500:
        payload = b"%06d" % sent
        if sent - received < 4 and ring.try_write(payload):
            inflight.append(payload)
            sent += 1
            continue
        view = ring.try_read()
        assert view is not None
        assert bytes(view) == inflight.pop(0)
        view.release()
        ring.commit()
        received += 1


def test_variable_sizes_across_wrap_boundary(ring):
    sizes = [1, 37, 80, 3, 120, 60, 11, 99] * 30
    pending = []
    for size in sizes:
        payload = bytes([size % 251]) * size
        while not ring.try_write(payload):
            view = ring.try_read()
            assert bytes(view) == pending.pop(0)
            view.release()
            ring.commit()
        pending.append(payload)
    while pending:
        view = ring.try_read()
        assert bytes(view) == pending.pop(0)
        view.release()
        ring.commit()


def test_oversized_payload_raises(ring):
    with pytest.raises(TransportError):
        ring.try_write(b"x" * (ring.max_payload + 1))


def test_read_with_pending_uncommitted_raises(ring):
    ring.try_write(b"one")
    ring.try_write(b"two")
    view = ring.try_read()
    assert bytes(view) == b"one"
    with pytest.raises(TransportError):
        ring.try_read()
    view.release()
    ring.commit()
    view = ring.try_read()
    assert bytes(view) == b"two"
    view.release()
    ring.commit()


def test_commit_required_to_free_space(ring):
    assert ring.try_write(b"y" * 100)
    occupied = ring.occupancy()
    assert occupied > 0
    view = ring.try_read()
    # Reading without committing must not release space.
    assert ring.occupancy() == occupied
    view.release()
    ring.commit()
    assert ring.occupancy() == 0


def test_capacity_floor_enforced():
    with pytest.raises(TransportError):
        SpscRing(capacity=32)


def test_ring_is_not_picklable(ring):
    with pytest.raises(TransportError):
        pickle.dumps(ring)


def test_corrupt_length_prefix_raises_torn_frame(ring):
    assert ring.try_write(b"payload")
    # Overwrite the record's length prefix with an impossible length
    # (simulates a torn write straddling the prefix).  The first record
    # starts at data offset 0, so its prefix is bytes 0..4 of _data.
    ring._data[0:4] = b"\xf0\xff\xff\x0f"
    with pytest.raises(TornFrameError):
        ring.try_read()


def test_occupancy_ratio_is_monotone(ring):
    ratios = []
    for _ in range(4):
        assert ring.try_write(b"z" * 30)
        ratios.append(ring.occupancy_ratio())
    assert ratios == sorted(ratios)
    assert 0.0 < ratios[-1] <= 1.0
