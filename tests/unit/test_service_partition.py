"""Unit tests: hash partitioning, batch framing, slice arithmetic,
load-shedding helpers, and the cross-shard merge capability check."""

from __future__ import annotations

from array import array

import pytest

from repro.errors import MergeCapabilityError, ServiceError
from repro.operators.algebraic import mean_operator, range_operator
from repro.operators.positional import FirstOperator, LastOperator
from repro.operators.registry import get_operator
from repro.service.merge import check_mergeable
from repro.service.partition import (
    Batch,
    Router,
    drop_records,
    shard_of,
    stable_hash,
    thin_batch,
    typed_column,
)
from repro.service.shard import ShardConfig
from repro.service.slices import SliceClock
from repro.windows.partial import PartialAggregator
from repro.windows.plan import build_shared_plan
from repro.windows.query import Query

QUERIES = (Query(8, 4), Query(6, 2))


# -- hash partitioning ----------------------------------------------


def test_stable_hash_is_deterministic_across_runs():
    # FNV-1a over repr: these constants must never change, or restored
    # checkpoints would see keys migrate between shards.
    assert stable_hash("sensor-1") == 0x7DA0B3B92DB1CB7F
    assert stable_hash(42) == 0x07EE7E07B4B19223
    assert stable_hash(("eu", 7)) == 0x9D060A0985577E43


def test_stable_hash_differs_from_salted_builtin_behaviour():
    # Same key, same shard — the entire recovery design rests on this.
    for key in ("a", "b", "sensor-99", 123, (1, "x")):
        assert shard_of(key, 5) == shard_of(key, 5)
        assert 0 <= shard_of(key, 5) < 5


def test_shard_of_spreads_keys_reasonably():
    shards = [shard_of(f"key-{i}", 4) for i in range(400)]
    counts = [shards.count(s) for s in range(4)]
    assert all(count > 40 for count in counts), counts


# -- batch framing --------------------------------------------------


def _clock():
    return SliceClock(build_shared_plan(QUERIES, "pairs"))


def test_router_frames_gapless_sequences_per_shard():
    router = Router(num_shards=3, batch_size=4, clock=_clock())
    shipped = []
    for i in range(100):
        shipped.extend(router.put(f"k{i % 7}", i))
    shipped.extend(router.flush())
    per_shard = {}
    for batch in shipped:
        per_shard.setdefault(batch.shard, []).append(batch.seq)
    for shard, seqs in per_shard.items():
        assert seqs == list(range(1, len(seqs) + 1)), shard


def test_router_assigns_global_positions_exactly_once():
    router = Router(num_shards=4, batch_size=5, clock=_clock())
    shipped = []
    for i in range(61):
        shipped.extend(router.put(f"k{i % 9}", i))
    shipped.extend(router.flush())
    positions = sorted(
        position for batch in shipped for position in batch.positions
    )
    assert positions == list(range(1, 62))


def test_router_flush_round_carries_uniform_watermark_to_all_shards():
    router = Router(num_shards=3, batch_size=4, clock=_clock())
    shipped = []
    for i in range(24):
        shipped.extend(router.put(f"k{i % 5}", i))
    rounds = {}
    for batch in shipped:
        rounds.setdefault(batch.watermark, set()).add(batch.shard)
    # Every flush round reached all three shards (empty frames count).
    for watermark, shards in rounds.items():
        assert shards == {0, 1, 2}, (watermark, shards)


def test_router_per_key_mode_skips_empty_frames():
    router = Router(num_shards=8, batch_size=2, clock=None)
    shipped = []
    for i in range(10):
        shipped.extend(router.put("always-same-key", i))
    shipped.extend(router.flush())
    assert shipped  # one busy shard
    assert all(len(batch) > 0 for batch in shipped)
    assert len({batch.shard for batch in shipped}) == 1


def test_router_rejects_bad_configuration():
    with pytest.raises(ServiceError):
        Router(num_shards=0, batch_size=4)
    with pytest.raises(ServiceError):
        Router(num_shards=2, batch_size=0)


# -- typed value columns --------------------------------------------


def test_typed_column_accepts_arrays_and_i64_f64_memoryviews():
    ints = array("q", [1, -2, 3])
    floats = array("d", [0.5, -1.25])
    assert typed_column(ints) is ints
    assert typed_column(floats) is floats
    assert typed_column(memoryview(ints)) == ints
    assert typed_column(memoryview(floats)) == floats


def test_typed_column_rejects_plain_sequences_and_narrow_buffers():
    assert typed_column([1, 2, 3]) is None
    assert typed_column((1.0, 2.0)) is None
    assert typed_column(range(4)) is None
    assert typed_column(b"\x00" * 16) is None
    assert typed_column("abcdefgh") is None
    assert typed_column(array("i", [1, 2])) is None  # 32-bit: not i64
    assert typed_column(array("B", b"\x00" * 8)) is None


def test_put_column_keeps_typed_buffers_typed_through_framing():
    router = Router(num_shards=2, batch_size=4, clock=_clock())
    batches = router.put_column("k", array("q", range(8)))
    batches.extend(router.flush())
    data = [b for b in batches if len(b)]
    assert data
    for batch in data:
        assert type(batch.values) is array and batch.values.typecode == "q"
        assert type(batch.positions) is array
        assert batch.positions.typecode == "q"
    assert [v for b in data for v in b.values] == list(range(8))


def test_put_column_typed_path_matches_per_record_puts():
    values = [(-1) ** i * i * 7 for i in range(23)]
    typed = Router(num_shards=3, batch_size=4, clock=_clock())
    boxed = Router(num_shards=3, batch_size=4, clock=_clock())
    shipped_typed = typed.put_column("sensor", array("q", values))
    shipped_typed.extend(typed.flush())
    shipped_boxed = []
    for value in values:
        shipped_boxed.extend(boxed.put("sensor", value))
    shipped_boxed.extend(boxed.flush())
    assert len(shipped_typed) == len(shipped_boxed)
    for a, b in zip(shipped_typed, shipped_boxed):
        assert (a.shard, a.seq, a.watermark) == (b.shard, b.seq, b.watermark)
        assert list(a.positions) == list(b.positions)
        assert a.keys == b.keys
        assert list(a.values) == list(b.values)


def test_bool_append_demotes_typed_buffer_exactly():
    # A bool is an int subclass; letting it through an i64 buffer would
    # silently re-type it, so the buffer demotes to a list instead.
    router = Router(num_shards=1, batch_size=64, clock=_clock())
    router.put_column("k", array("q", [1, 2, 3]))
    router.put("k", True)
    [batch] = router.flush()
    assert type(batch.values) is list
    assert batch.values == [1, 2, 3, True]
    assert type(batch.values[3]) is bool


def test_out_of_range_int_demotes_typed_buffer_exactly():
    router = Router(num_shards=1, batch_size=64, clock=_clock())
    router.put_column("k", array("q", [5]))
    router.put("k", 2**70)
    [batch] = router.flush()
    assert type(batch.values) is list
    assert batch.values == [5, 2**70]


def test_mixed_typecode_columns_demote_to_exact_list():
    router = Router(num_shards=1, batch_size=64, clock=_clock())
    router.put_column("k", array("q", [1, 2]))
    router.put_column("k", array("d", [0.5]))
    [batch] = router.flush()
    assert type(batch.values) is list
    assert batch.values == [1, 2, 0.5]
    assert [type(v) for v in batch.values] == [int, int, float]


# -- load-shedding helpers ------------------------------------------


def _batch():
    return Batch(0, 7, 3, [1, 2, 3, 4, 5], list("abcde"), [10, 20, 30, 40, 50])


def test_drop_records_keeps_frame_and_counts_exactly():
    empty, dropped = drop_records(_batch())
    assert dropped == 5
    assert len(empty) == 0
    assert (empty.shard, empty.seq, empty.watermark) == (0, 7, 3)


def test_thin_batch_keeps_every_other_record_deterministically():
    thinned, dropped = thin_batch(_batch())
    assert dropped == 2
    assert thinned.positions == [1, 3, 5]
    assert thinned.keys == ["a", "c", "e"]
    assert thinned.values == [10, 30, 50]
    with pytest.raises(ServiceError):
        thin_batch(_batch(), keep_every=1)


# -- slice arithmetic -----------------------------------------------


@pytest.mark.parametrize("technique", ["panes", "pairs"])
@pytest.mark.parametrize(
    "queries",
    [QUERIES, (Query(5, 3),), (Query(12, 4), Query(9, 3), Query(4, 2))],
)
def test_slice_clock_matches_partial_aggregator_boundaries(
    queries, technique
):
    plan = build_shared_plan(queries, technique)
    clock = SliceClock(plan)
    folder = PartialAggregator(get_operator("count"), plan)
    boundaries = []
    for position in range(1, 161):
        if folder.feed(0) is not None:
            boundaries.append(position)
    for index, end in enumerate(boundaries):
        assert clock.end_position(index) == end
        assert clock.step_of(index) == plan.steps[index % len(plan.steps)]
    for position in range(1, 161):
        expected_closed = sum(1 for end in boundaries if end <= position)
        assert clock.slices_closed_by(position) == expected_closed
        containing = sum(1 for end in boundaries if end < position)
        assert clock.slice_of(position) == containing


# -- merge capability -----------------------------------------------


def test_mergeable_defaults_follow_commutativity():
    assert get_operator("sum").mergeable
    assert get_operator("max").mergeable
    assert mean_operator().mergeable
    assert not FirstOperator().mergeable
    assert not LastOperator().mergeable


def test_check_mergeable_accepts_the_paper_operators():
    for name in ("sum", "count", "max", "min", "mean", "stddev"):
        check_mergeable(get_operator(name))


def test_check_mergeable_rejects_order_sensitive_operators():
    with pytest.raises(MergeCapabilityError, match="per-key mode"):
        check_mergeable(FirstOperator())


def test_check_mergeable_rejects_operators_without_engine_path():
    # Range is commutative but neither invertible nor selection-type.
    with pytest.raises(MergeCapabilityError, match="processing path"):
        check_mergeable(range_operator())


def test_shard_config_validates_mode_and_interval():
    with pytest.raises(ServiceError):
        ShardConfig(0, 1, QUERIES, get_operator("sum"), mode="bogus")
    with pytest.raises(ServiceError):
        ShardConfig(
            0, 1, QUERIES, get_operator("sum"), checkpoint_interval=-1
        )
