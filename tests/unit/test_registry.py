"""Unit tests for the algorithm registry."""

from __future__ import annotations

import pytest

from repro.errors import UnknownOperatorError
from repro.operators.invertible import SumOperator
from repro.registry import available_algorithms, get_algorithm

PAPER_ALGORITHMS = [
    "naive", "flatfat", "bint", "flatfit", "twostacks", "daba",
    "slickdeque",
]


def test_all_compared_algorithms_registered():
    assert available_algorithms() == PAPER_ALGORITHMS


def test_multi_query_capability_matches_paper():
    """Section 2.2: TwoStacks and DABA have no multi-query support."""
    multi = available_algorithms(multi_query=True)
    assert "twostacks" not in multi
    assert "daba" not in multi
    assert "slickdeque" in multi
    assert "flatfit" in multi


def test_recalc_is_registered_but_not_compared():
    assert get_algorithm("recalc") is not None
    assert "recalc" not in available_algorithms()


def test_spec_builds_working_aggregator():
    for name in PAPER_ALGORITHMS:
        spec = get_algorithm(name)
        aggregator = spec.single(SumOperator(), 4)
        assert aggregator.step(5) == 5
        assert aggregator.step(3) == 8


def test_labels_match_paper_names():
    assert get_algorithm("bint").label == "B-Int"
    assert get_algorithm("slickdeque").label == "SlickDeque"


def test_unknown_algorithm_raises():
    with pytest.raises(UnknownOperatorError, match="known algorithms"):
        get_algorithm("scotty")
