"""Unit tests for compatible-operator sharing (§2.3)."""

from __future__ import annotations

import pytest

from repro.errors import InvalidOperatorError
from repro.operators.registry import get_operator
from repro.windows.compatibility import (
    AcqSpec,
    CompatibleSharedEngine,
    build_sharing_plan,
    distributive_components,
)
from repro.windows.query import Query
from tests.conftest import int_stream


class TestDecomposition:
    def test_plain_operator_is_its_own_component(self):
        components = distributive_components(get_operator("sum"))
        assert [c.name for c in components] == ["sum"]

    def test_mean_decomposes_into_sum_and_count(self):
        components = distributive_components(get_operator("mean"))
        assert [c.name for c in components] == ["sum", "count"]

    def test_range_decomposes_into_max_and_min(self):
        components = distributive_components(get_operator("range"))
        assert [c.name for c in components] == ["max", "min"]


class TestSharingPlan:
    def test_paper_example_sum_count_average(self):
        """§2.3: "Sum, Count and Average can share results"."""
        specs = [
            AcqSpec(Query(8, 2), "sum"),
            AcqSpec(Query(8, 2), "count"),
            AcqSpec(Query(8, 2), "mean"),
        ]
        plan = build_sharing_plan(specs)
        # Three queries, but only two component engines: sum + count.
        assert set(plan.components) == {"sum", "count"}
        assert plan.shared_component_count == 2
        assert plan.unshared_component_count == 4

    def test_stddev_extends_the_same_group(self):
        specs = [
            AcqSpec(Query(8, 2), "mean"),
            AcqSpec(Query(8, 2), "stddev"),
        ]
        plan = build_sharing_plan(specs)
        assert set(plan.components) == {"sum", "count",
                                        "sum_of_squares"}

    def test_describe_lists_readers(self):
        plan = build_sharing_plan([AcqSpec(Query(4, 2), "mean")])
        assert "mean[q4/2] <- [sum, count]" in plan.describe()


class TestCompatibleSharedEngine:
    def brute(self, specs, stream):
        expected = []
        for t in range(1, len(stream) + 1):
            for spec in specs:
                if spec.query.reports_at(t):
                    op = get_operator(spec.operator_name)
                    window = stream[max(0, t - spec.query.range_size):t]
                    expected.append(
                        (t, spec.label, op.lower(op.fold(window)))
                    )
        return sorted(expected, key=lambda row: (row[0], row[1]))

    def run_engine(self, specs, stream):
        engine = CompatibleSharedEngine(specs)
        got = [
            (position, spec.label, answer)
            for position, spec, answer in engine.run(stream)
        ]
        return sorted(got, key=lambda row: (row[0], row[1]))

    def test_sum_count_mean_share(self):
        stream = int_stream(120, seed=31)
        specs = [
            AcqSpec(Query(8, 2), "sum"),
            AcqSpec(Query(8, 2), "count"),
            AcqSpec(Query(8, 2), "mean"),
        ]
        assert self.run_engine(specs, stream) == self.brute(
            specs, stream
        )

    def test_heterogeneous_windows(self):
        stream = int_stream(150, seed=32)
        specs = [
            AcqSpec(Query(6, 2), "sum"),
            AcqSpec(Query(8, 4), "mean"),
            AcqSpec(Query(12, 4), "variance"),
        ]
        got = self.run_engine(specs, stream)
        expected = self.brute(specs, stream)
        assert [(p, l) for p, l, _ in got] == [
            (p, l) for p, l, _ in expected
        ]
        for (_, _, a), (_, _, b) in zip(got, expected):
            assert a == pytest.approx(b)

    def test_range_shares_max_and_min_engines(self):
        stream = int_stream(100, seed=33)
        specs = [
            AcqSpec(Query(8, 2), "max"),
            AcqSpec(Query(8, 2), "min"),
            AcqSpec(Query(8, 2), "range"),
        ]
        engine = CompatibleSharedEngine(specs)
        assert engine.plan.shared_component_count == 2
        got = [
            (position, spec.label, answer)
            for position, spec, answer in engine.run(stream)
        ]
        assert sorted(got, key=lambda r: (r[0], r[1])) == self.brute(
            specs, stream
        )

    def test_empty_specs_rejected(self):
        with pytest.raises(InvalidOperatorError):
            CompatibleSharedEngine([])
