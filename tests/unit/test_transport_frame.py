"""Unit tests for the columnar frame codec.

The codec is the contract between the supervisor (encoder) and the
shard worker (decoder): these tests pin the capability check, the
dictionary key encoding, CRC protection, and the exact round-trip
semantics the service-level equivalence tests rely on.
"""

from __future__ import annotations

import struct

import pytest

from repro.errors import TornFrameError
from repro.service.transport.frame import (
    FrameKind,
    HEADER_BYTES,
    MAGIC,
    decode_frame,
    encode_batch_frame,
    encode_control_frame,
    encode_pickled_frame,
    encode_values,
)


def _decode(frame_bytes):
    return decode_frame(memoryview(frame_bytes))


# -- capability check ----------------------------------------------------


def test_encode_values_all_ints():
    body, is_float = encode_values([1, -2, 3_000_000_000])
    assert not is_float
    assert len(body) == 3 * 8


def test_encode_values_all_floats():
    body, is_float = encode_values([1.5, -0.25, float("inf")])
    assert is_float
    assert len(body) == 3 * 8


def test_encode_values_empty_is_columnar():
    assert encode_values([]) == (b"", False)


def test_encode_values_rejects_mixed_types():
    assert encode_values([1, 2.0]) is None


def test_encode_values_rejects_bools():
    # bool is an int subclass but must not round-trip as int: the
    # bool_all/bool_any operators would change answer type.
    assert encode_values([True, False]) is None
    assert encode_values([1, True]) is None


def test_encode_values_rejects_out_of_range_ints():
    assert encode_values([1 << 70]) is None
    assert encode_values([-(1 << 70)]) is None


def test_encode_values_rejects_objects():
    assert encode_values(["a", "b"]) is None
    assert encode_values([None]) is None


# -- columnar round-trip -------------------------------------------------


def test_columnar_round_trip_ints():
    positions = [10, 11, 12, 13]
    keys = ["a", "b", "a", "c"]
    values = [5, -7, 1 << 60, 0]
    frame = encode_batch_frame(3, 42, 13, positions, keys, values, None)
    decoded = _decode(frame)
    assert decoded.kind is FrameKind.COLUMNAR
    assert decoded.shard == 3
    assert decoded.seq == 42
    assert decoded.watermark == 13
    assert decoded.count == 4
    assert list(decoded.positions) == positions
    assert list(decoded.values) == values
    assert all(type(v) is int for v in decoded.values)
    assert decoded.keys == keys
    assert decoded.traces is None
    decoded.release()


def test_columnar_round_trip_floats():
    values = [1.5, -0.0, float("inf"), 2.0**-1074]
    frame = encode_batch_frame(0, 1, None, [0, 1, 2, 3], [1, 1, 2, 2], values, None)
    decoded = _decode(frame)
    assert decoded.watermark is None
    out = list(decoded.values)
    assert out == values
    assert all(type(v) is float for v in out)
    # -0.0 sign must survive (== alone would not catch it).
    assert str(out[1]) == "-0.0"
    decoded.release()


def test_columnar_round_trip_nan():
    frame = encode_batch_frame(0, 1, 0, [0], ["k"], [float("nan")], None)
    decoded = _decode(frame)
    value = decoded.values[0]
    assert value != value  # NaN
    assert decoded.watermark == 0
    decoded.release()


def test_columnar_empty_batch_carries_watermark():
    frame = encode_batch_frame(1, 9, 100, [], [], [], None)
    decoded = _decode(frame)
    assert decoded.count == 0
    assert decoded.keys == []
    assert list(decoded.positions) == []
    assert decoded.watermark == 100
    decoded.release()


def test_columnar_traces_round_trip():
    traces = [123, None, 456]
    frame = encode_batch_frame(0, 1, 2, [0, 1, 2], ["k"] * 3, [1, 2, 3], traces)
    decoded = _decode(frame)
    assert decoded.traces == traces
    decoded.release()


def test_columnar_all_none_traces_omit_column():
    with_traces = encode_batch_frame(0, 1, 2, [0], ["k"], [1], [None])
    without = encode_batch_frame(0, 1, 2, [0], ["k"], [1], None)
    assert with_traces == without
    decoded = _decode(with_traces)
    assert decoded.traces is None
    decoded.release()


def test_columnar_returns_none_on_unsupported_values():
    assert encode_batch_frame(0, 1, 2, [0, 1], ["a", "b"], [1, "x"], None) is None


@pytest.mark.parametrize(
    "keys",
    [
        ["alpha", "beta", "alpha"],
        [0, -(1 << 63), (1 << 63) - 1],
        [1.5, -0.25, 1.5],
        [b"\x00raw", b"", b"\x00raw"],
        [True, False, True],
        [None, None, None],
        ["mixed", 7, None],
    ],
)
def test_key_table_round_trips_common_types(keys):
    frame = encode_batch_frame(0, 1, None, [0, 1, 2], keys, [1, 2, 3], None)
    decoded = _decode(frame)
    assert decoded.keys == keys
    assert [type(k) for k in decoded.keys] == [type(k) for k in keys]
    decoded.release()


def test_key_table_pickles_exotic_keys():
    keys = [("tuple", 1), frozenset({2}), ("tuple", 1)]
    frame = encode_batch_frame(0, 1, None, [0, 1, 2], keys, [1, 2, 3], None)
    decoded = _decode(frame)
    assert decoded.keys == keys
    decoded.release()


def test_key_table_huge_int_keys_pickle():
    # Keys outside i64 take the pickled-table path, not an overflow.
    keys = [1 << 100, "x", 1 << 100]
    frame = encode_batch_frame(0, 1, None, [0, 1, 2], keys, [1, 2, 3], None)
    decoded = _decode(frame)
    assert decoded.keys == keys
    decoded.release()


# -- pickled and control frames ------------------------------------------


def test_pickled_frame_round_trip():
    payload = {"arbitrary": ["structure", 1, None]}
    frame = encode_pickled_frame(FrameKind.PICKLED, 2, 7, payload)
    decoded = _decode(frame)
    assert decoded.kind is FrameKind.PICKLED
    assert decoded.shard == 2
    assert decoded.seq == 7
    assert decoded.payload == payload


def test_output_frame_round_trip():
    frame = encode_pickled_frame(FrameKind.OUTPUT, 0, 3, ("answers", [1, 2]))
    decoded = _decode(frame)
    assert decoded.kind is FrameKind.OUTPUT
    assert decoded.payload == ("answers", [1, 2])


@pytest.mark.parametrize("kind", [FrameKind.STOP, FrameKind.SPILL])
def test_control_frames_are_bodyless(kind):
    frame = encode_control_frame(kind, 5)
    assert len(frame) == HEADER_BYTES
    decoded = _decode(frame)
    assert decoded.kind is kind
    assert decoded.shard == 5
    assert decoded.payload is None


# -- corruption detection ------------------------------------------------


def test_decode_rejects_short_frame():
    with pytest.raises(TornFrameError):
        _decode(b"SDF1\x01")


def test_decode_rejects_bad_magic():
    frame = bytearray(encode_control_frame(FrameKind.STOP, 0))
    frame[:4] = b"XXXX"
    with pytest.raises(TornFrameError):
        _decode(bytes(frame))


def test_decode_rejects_unknown_kind():
    frame = bytearray(encode_control_frame(FrameKind.STOP, 0))
    frame[4] = 99
    # CRC covers the kind byte, so this trips the CRC check first;
    # either way the torn-write signature must surface.
    with pytest.raises(TornFrameError):
        _decode(bytes(frame))


@pytest.mark.parametrize("index", [6, 20, 40, -1])
def test_single_bit_flip_anywhere_is_detected(index):
    frame = bytearray(
        encode_batch_frame(1, 2, 3, [0, 1], ["a", "b"], [10, 20], [7, None])
    )
    frame[index] ^= 0x40
    with pytest.raises(TornFrameError):
        _decode(bytes(frame))


def test_truncated_body_is_detected():
    frame = encode_batch_frame(0, 1, 2, [0, 1], ["a", "b"], [1, 2], None)
    with pytest.raises(TornFrameError):
        _decode(frame[:-5])


def test_magic_constant_is_stable():
    # The wire constant is load-bearing across versions; pin it.
    assert MAGIC == b"SDF1"
    frame = encode_control_frame(FrameKind.STOP, 0)
    assert frame[:4] == MAGIC
    assert struct.unpack_from("<B", frame, 4)[0] == int(FrameKind.STOP)
