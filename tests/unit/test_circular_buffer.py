"""Unit tests for the circular buffer."""

from __future__ import annotations

import pytest

from repro.errors import WindowStateError
from repro.structures.circular_buffer import CircularBuffer


def test_push_returns_expiring_value():
    buf = CircularBuffer(3, fill=0)
    assert buf.push(1) == 0  # fill expires first
    assert buf.push(2) == 0
    assert buf.push(3) == 0
    assert buf.push(4) == 1  # now real values expire FIFO
    assert buf.push(5) == 2


def test_position_wraps():
    buf = CircularBuffer(3)
    assert buf.position == 0
    for value in range(5):
        buf.push(value)
    assert buf.position == 5 % 3


def test_len_caps_at_capacity():
    buf = CircularBuffer(3)
    assert len(buf) == 0
    buf.push(1)
    assert len(buf) == 1
    for value in range(10):
        buf.push(value)
    assert len(buf) == 3


def test_is_warm():
    buf = CircularBuffer(2)
    assert not buf.is_warm
    buf.push(1)
    assert not buf.is_warm
    buf.push(2)
    assert buf.is_warm


def test_peek_expiring_matches_next_push():
    buf = CircularBuffer(3, fill=-1)
    for value in range(4):
        assert buf.peek_expiring() == buf.push(value)


def test_at_offset():
    buf = CircularBuffer(4, fill=0)
    for value in (10, 20, 30):
        buf.push(value)
    assert buf.at_offset(1) == 30
    assert buf.at_offset(2) == 20
    assert buf.at_offset(3) == 10
    assert buf.at_offset(4) == 0  # unwritten slot = fill


def test_at_offset_bounds():
    buf = CircularBuffer(3)
    with pytest.raises(WindowStateError):
        buf.at_offset(0)
    with pytest.raises(WindowStateError):
        buf.at_offset(4)


def test_last_iterates_oldest_first():
    buf = CircularBuffer(3)
    for value in (1, 2, 3, 4, 5):
        buf.push(value)
    assert list(buf.last(3)) == [3, 4, 5]
    assert list(buf.last(2)) == [4, 5]
    assert list(buf.last(0)) == []


def test_last_bounds():
    buf = CircularBuffer(3)
    with pytest.raises(WindowStateError):
        list(buf.last(4))


def test_iter_matches_len():
    buf = CircularBuffer(4, fill=None)
    buf.push("a")
    buf.push("b")
    assert list(buf) == ["a", "b"]


def test_memory_words_is_capacity():
    assert CircularBuffer(17).memory_words() == 17


def test_zero_capacity_rejected():
    with pytest.raises(WindowStateError):
        CircularBuffer(0)
