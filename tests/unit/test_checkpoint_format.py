"""Unit tests: checkpoint format-header failure modes.

Complements the integration resume-equivalence suite with the two
documented failure paths: a version-mismatched header must name both
library versions involved, and unpicklable operator state (the
lambda-key ``ArgMaxOperator`` limitation) must fail loudly at snapshot
time.
"""

from __future__ import annotations

import pickle

import pytest

import repro
from repro.operators.noninvertible import ArgMaxOperator
from repro.registry import get_algorithm
from repro.stream.checkpoint import (
    _MAGIC,
    FORMAT_VERSION,
    CheckpointError,
    restore,
    snapshot,
)


def _checkpoint_with_version(version, library_version="9.9.9"):
    header = pickle.dumps(
        {
            "magic": _MAGIC,
            "version": version,
            "type": "SlickDequeInv",
            "library_version": library_version,
        },
        protocol=4,
    )
    payload = pickle.dumps([1, 2, 3], protocol=4)
    return len(header).to_bytes(4, "big") + header + payload


def test_version_mismatch_error_names_both_library_versions():
    data = _checkpoint_with_version(FORMAT_VERSION + 1)
    with pytest.raises(CheckpointError) as excinfo:
        restore(data)
    message = str(excinfo.value)
    assert f"v{FORMAT_VERSION + 1}" in message
    assert "9.9.9" in message  # the writer's library version
    assert repro.__version__ in message  # this library's version
    assert f"format v{FORMAT_VERSION}" in message


def test_version_mismatch_without_recorded_writer_version():
    data = _checkpoint_with_version(
        FORMAT_VERSION + 1, library_version=None
    )
    with pytest.raises(CheckpointError) as excinfo:
        restore(data)
    assert repro.__version__ in str(excinfo.value)


def test_snapshot_header_records_library_version():
    data = snapshot(get_algorithm("slickdeque").single(
        repro.get_operator("sum"), 4
    ))
    header_length = int.from_bytes(data[:4], "big")
    header = pickle.loads(data[4:4 + header_length])
    assert header["library_version"] == repro.__version__


def test_lambda_key_argmax_cannot_be_checkpointed():
    operator = ArgMaxOperator(lambda x: x * x, name="argmax_lambda")
    aggregator = get_algorithm("slickdeque").single(operator, 8)
    aggregator.run([3, -5, 2])
    with pytest.raises(CheckpointError) as excinfo:
        snapshot(aggregator)
    assert "cannot snapshot" in str(excinfo.value)
