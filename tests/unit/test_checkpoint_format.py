"""Unit tests: checkpoint format-header failure modes.

Complements the integration resume-equivalence suite with the
documented failure paths: a version-mismatched header must name both
library versions involved, unpicklable operator state (the lambda-key
``ArgMaxOperator`` limitation) must fail loudly at snapshot time, and
the v2 CRC32 checksum must catch corrupted or truncated snapshots
while v1 snapshots (no checksum) stay readable.
"""

from __future__ import annotations

import pickle

import pytest

import repro
from repro.operators.noninvertible import ArgMaxOperator
from repro.registry import get_algorithm
from repro.stream.checkpoint import (
    _MAGIC,
    FORMAT_VERSION,
    OLDEST_READABLE_VERSION,
    CheckpointError,
    restore,
    snapshot,
    verify,
)


def _checkpoint_with_version(version, library_version="9.9.9"):
    header = pickle.dumps(
        {
            "magic": _MAGIC,
            "version": version,
            "type": "SlickDequeInv",
            "library_version": library_version,
        },
        protocol=4,
    )
    payload = pickle.dumps([1, 2, 3], protocol=4)
    return len(header).to_bytes(4, "big") + header + payload


def test_version_mismatch_error_names_both_library_versions():
    data = _checkpoint_with_version(FORMAT_VERSION + 1)
    with pytest.raises(CheckpointError) as excinfo:
        restore(data)
    message = str(excinfo.value)
    assert f"v{FORMAT_VERSION + 1}" in message
    assert "9.9.9" in message  # the writer's library version
    assert repro.__version__ in message  # this library's version
    assert (
        f"v{OLDEST_READABLE_VERSION}..v{FORMAT_VERSION}" in message
    )


def test_version_mismatch_without_recorded_writer_version():
    data = _checkpoint_with_version(
        FORMAT_VERSION + 1, library_version=None
    )
    with pytest.raises(CheckpointError) as excinfo:
        restore(data)
    assert repro.__version__ in str(excinfo.value)


def test_snapshot_header_records_library_version():
    data = snapshot(get_algorithm("slickdeque").single(
        repro.get_operator("sum"), 4
    ))
    header_length = int.from_bytes(data[:4], "big")
    header = pickle.loads(data[4:4 + header_length])
    assert header["library_version"] == repro.__version__


def test_lambda_key_argmax_cannot_be_checkpointed():
    operator = ArgMaxOperator(lambda x: x * x, name="argmax_lambda")
    aggregator = get_algorithm("slickdeque").single(operator, 8)
    aggregator.run([3, -5, 2])
    with pytest.raises(CheckpointError) as excinfo:
        snapshot(aggregator)
    assert "cannot snapshot" in str(excinfo.value)


# -- v2 CRC32 checksum ---------------------------------------------


def _aggregator():
    aggregator = get_algorithm("slickdeque").single(
        repro.get_operator("sum"), 4
    )
    aggregator.run([3, -5, 2, 7])
    return aggregator


def test_v2_header_carries_payload_crc32():
    import zlib

    data = snapshot(_aggregator())
    header_length = int.from_bytes(data[:4], "big")
    header = pickle.loads(data[4:4 + header_length])
    assert header["version"] == FORMAT_VERSION == 2
    assert header["crc32"] == zlib.crc32(data[4 + header_length:])


def test_bit_flip_in_payload_fails_the_crc_check():
    data = bytearray(snapshot(_aggregator()))
    data[-3] ^= 0x10  # payload region: past header, before end
    with pytest.raises(CheckpointError, match="CRC32"):
        restore(bytes(data))
    with pytest.raises(CheckpointError, match="CRC32"):
        verify(bytes(data))


def test_verify_accepts_intact_snapshots_without_unpickling():
    data = snapshot(_aggregator())
    assert verify(data) is None  # no exception


@pytest.mark.parametrize("size", [0, 1, 3])
def test_shorter_than_length_prefix_is_a_clear_error(size):
    with pytest.raises(CheckpointError, match="truncated"):
        restore(b"\x00" * size)
    with pytest.raises(CheckpointError, match="truncated"):
        verify(b"\x00" * size)


def test_v1_snapshot_without_checksum_still_restores():
    payload = pickle.dumps([1, 2, 3], protocol=4)
    header = pickle.dumps(
        {
            "magic": _MAGIC,
            "version": 1,
            "type": "list",
            "library_version": "1.0.0",
        },
        protocol=4,
    )
    data = len(header).to_bytes(4, "big") + header + payload
    assert restore(data) == [1, 2, 3]
    assert verify(data) is None  # nothing to check, nothing raised


def test_v1_snapshot_corruption_is_not_detectable():
    """The motivating gap: v1 had no checksum, so v2 exists."""
    payload = pickle.dumps(b"AAAA", protocol=4)
    header = pickle.dumps(
        {
            "magic": _MAGIC,
            "version": 1,
            "type": "bytes",
            "library_version": "1.0.0",
        },
        protocol=4,
    )
    data = bytearray(
        len(header).to_bytes(4, "big") + header + payload
    )
    data[-4] ^= 0x01  # flips a content byte silently (an A becomes @)
    restored = restore(bytes(data))
    assert restored != b"AAAA"  # silently wrong — v2 catches this
