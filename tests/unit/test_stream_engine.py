"""Unit tests for the stream engine and the Cutty pipeline."""

from __future__ import annotations

import pytest

from repro.errors import PlanError
from repro.operators.registry import get_operator
from repro.stream.engine import CuttyPipeline, StreamEngine
from repro.stream.sink import CollectSink, CountingSink
from repro.windows.query import Query
from tests.conftest import int_stream


def brute_answers(queries, operator_name, stream):
    op = get_operator(operator_name)
    out = []
    for t in range(1, len(stream) + 1):
        for q in sorted(queries, key=lambda q: -q.range_size):
            if q.reports_at(t):
                window = stream[max(0, t - q.range_size):t]
                out.append((t, q, op.lower(op.fold(window))))
    return out


class TestStreamEngine:
    STREAM = int_stream(160, seed=81)
    QUERIES = [Query(6, 2), Query(8, 4), Query(5, 2)]

    @pytest.mark.parametrize("operator_name", ["sum", "max", "mean"])
    @pytest.mark.parametrize("mode", ["shared", "independent"])
    def test_answers_match_brute_force(self, operator_name, mode):
        sink = CollectSink()
        engine = StreamEngine(
            self.QUERIES,
            get_operator(operator_name),
            mode=mode,
            sinks=[sink],
        )
        engine.run(self.STREAM)
        assert sink.answers == brute_answers(
            self.QUERIES, operator_name, self.STREAM
        )

    def test_independent_supports_any_algorithm(self):
        for algorithm in ("naive", "flatfat", "daba"):
            sink = CollectSink()
            engine = StreamEngine(
                self.QUERIES,
                get_operator("sum"),
                mode="independent",
                algorithm=algorithm,
                sinks=[sink],
            )
            engine.run(self.STREAM)
            assert sink.answers == brute_answers(
                self.QUERIES, "sum", self.STREAM
            )

    def test_counters(self):
        engine = StreamEngine(
            [Query(4, 2)], get_operator("sum"), sinks=[CountingSink()]
        )
        engine.run(self.STREAM)
        assert engine.tuples_consumed == len(self.STREAM)
        assert engine.answers_emitted == len(self.STREAM) // 2

    def test_multiple_sinks_all_receive(self):
        first, second = CountingSink(), CountingSink()
        engine = StreamEngine(
            [Query(4, 2)], get_operator("sum"), sinks=[first]
        )
        engine.add_sink(second)
        engine.run(self.STREAM)
        assert first.count == second.count > 0

    def test_unknown_mode_rejected(self):
        with pytest.raises(PlanError, match="unknown engine mode"):
            StreamEngine([Query(4, 2)], get_operator("sum"),
                         mode="magic")

    def test_panes_technique(self):
        sink = CollectSink()
        engine = StreamEngine(
            self.QUERIES,
            get_operator("max"),
            technique="panes",
            sinks=[sink],
        )
        engine.run(self.STREAM)
        assert sink.answers == brute_answers(
            self.QUERIES, "max", self.STREAM
        )


class TestCuttyPipeline:
    STREAM = int_stream(120, seed=82)

    @pytest.mark.parametrize("operator_name", ["sum", "max", "mean"])
    @pytest.mark.parametrize(
        "range_size,slide", [(6, 2), (7, 3), (3, 5), (5, 1), (4, 4)]
    )
    def test_matches_brute_force(self, operator_name, range_size, slide):
        query = Query(range_size, slide)
        pipeline = CuttyPipeline(query, get_operator(operator_name))
        got = pipeline.run(self.STREAM)
        expected = [
            (t, a)
            for t, _, a in brute_answers([query], operator_name,
                                         self.STREAM)
        ]
        assert got == expected

    def test_punctuations_counted(self):
        query = Query(7, 3)
        pipeline = CuttyPipeline(query, get_operator("sum"))
        pipeline.run(self.STREAM)
        # One punctuation per window start: one per slide.
        assert pipeline.punctuations == len(self.STREAM) // 3

    def test_range_below_slide_uses_open_partial_only(self):
        query = Query(2, 5)
        pipeline = CuttyPipeline(query, get_operator("sum"))
        got = pipeline.run(self.STREAM)
        expected = [
            (t, a)
            for t, _, a in brute_answers([query], "sum", self.STREAM)
        ]
        assert got == expected
