"""Unit tests for the measurement harness."""

from __future__ import annotations

import math

import pytest

from repro.baselines.naive import NaiveAggregator
from repro.baselines.recalc import RecalcAggregator
from repro.core.slickdeque_inv import SlickDequeInv
from repro.metrics.latency import (
    LatencyRecorder,
    measure_step_latencies,
)
from repro.metrics.memory import measure_memory, peak_memory_words
from repro.metrics.opcount import count_ops, count_ops_single
from repro.metrics.stats import (
    Summary,
    drop_top_fraction,
    geometric_mean,
    percentile,
    ratio,
)
from repro.metrics.throughput import (
    ThroughputResult,
    measure_single_query,
)
from repro.operators.invertible import SumOperator
from tests.conftest import int_stream


class TestStats:
    def test_percentile_interpolates(self):
        values = [0, 10, 20, 30]
        assert percentile(values, 0.0) == 0
        assert percentile(values, 1.0) == 30
        assert percentile(values, 0.5) == 15.0

    def test_percentile_validation(self):
        with pytest.raises(ValueError):
            percentile([], 0.5)
        with pytest.raises(ValueError):
            percentile([1], 1.5)

    def test_drop_top_fraction(self):
        values = list(range(1000))
        kept = drop_top_fraction(values, 0.01)
        assert len(kept) == 990
        assert max(kept) == 989

    def test_drop_keeps_at_least_one(self):
        assert drop_top_fraction([5], 0.99) == [5]

    def test_summary_categories(self):
        summary = Summary.of([4, 1, 3, 2])
        assert summary.minimum == 1
        assert summary.maximum == 4
        assert summary.mean == 2.5
        assert summary.median == 2.5
        assert summary.count == 4

    def test_summary_empty_rejected(self):
        with pytest.raises(ValueError):
            Summary.of([])

    def test_geometric_mean(self):
        assert geometric_mean([2, 8]) == pytest.approx(4.0)

    def test_ratio_zero_denominator(self):
        assert ratio(5, 0) == math.inf


class TestLatency:
    def test_recorder_collects_per_step(self):
        recorder = measure_step_latencies(
            SlickDequeInv(SumOperator(), 8), int_stream(100, seed=1)
        )
        assert len(recorder.samples_ns) == 100
        assert all(s >= 0 for s in recorder.samples_ns)

    def test_summary_from_recorder(self):
        recorder = LatencyRecorder()
        for sample in (100, 200, 300):
            recorder.record(sample)
        summary = recorder.summary(drop_fraction=0.0)
        assert summary.minimum == 100
        assert summary.maximum == 300

    def test_timed_returns_result(self):
        recorder = LatencyRecorder()
        assert recorder.timed(lambda: 42) == 42
        assert len(recorder.samples_ns) == 1


class TestThroughput:
    def test_measures_positive_rate(self):
        result = measure_single_query(
            lambda: SlickDequeInv(SumOperator(), 8),
            int_stream(500, seed=2),
        )
        assert result.slides == 500
        assert result.per_second > 0

    def test_zero_seconds_is_infinite(self):
        assert ThroughputResult(10, 0.0).per_second == math.inf


class TestMemory:
    def test_peak_tracks_growth(self):
        stream = int_stream(100, seed=3)
        peak = peak_memory_words(
            RecalcAggregator(SumOperator(), 16), stream
        )
        assert peak == 16

    def test_measure_memory_reports_both(self):
        result = measure_memory(
            lambda: NaiveAggregator(SumOperator(), 16),
            int_stream(50, seed=4),
        )
        assert result.logical_words == 16
        assert result.measured_peak_bytes > 0


class TestOpCount:
    def test_count_ops_per_slide(self):
        result = count_ops(
            lambda op: NaiveAggregator(op, 4),
            SumOperator(),
            int_stream(20, seed=5),
        )
        assert result.slides == 20
        assert result.worst_case == 3  # n - 1

    def test_steady_state_trims_warmup(self):
        result = count_ops(
            lambda op: NaiveAggregator(op, 4),
            SumOperator(),
            int_stream(20, seed=6),
        )
        steady = result.steady_state(8)
        assert steady.slides == 12
        assert steady.amortized == 3.0

    def test_count_ops_single_wrapper(self):
        result = count_ops_single(
            lambda op, window: SlickDequeInv(op, window),
            SumOperator(),
            8,
            int_stream(40, seed=7),
            warmup_slides=16,
        )
        assert result.amortized == 2.0
        assert result.worst_case == 2
