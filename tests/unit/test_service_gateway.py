"""Unit tests for the thread-safe :class:`ServiceGateway` seam."""

from __future__ import annotations

import threading

import pytest

from repro import AggregationService, Query, get_operator
from repro.errors import ServiceError
from repro.service.gateway import ServiceGateway

QUERIES = [Query(8, 4), Query(6, 2)]


def make_gateway(**kwargs) -> ServiceGateway:
    service = AggregationService(
        QUERIES,
        get_operator("sum"),
        num_shards=2,
        transport="inline",
        batch_size=8,
        **kwargs,
    )
    return ServiceGateway(service)


def test_submit_and_poll_pass_through():
    gateway = make_gateway()
    assert gateway.submit("a", 1) == 1
    assert gateway.submit_many([("a", 2), ("b", 3), ("a", 4)]) == 3
    gateway.submit_many([("b", v) for v in range(5, 45)])
    answers = gateway.poll()
    assert answers, "inline transport should release answers"
    result = gateway.close()
    reference = AggregationService(
        QUERIES,
        get_operator("sum"),
        num_shards=2,
        transport="inline",
        batch_size=8,
    )
    reference.submit_many(
        [("a", 1), ("a", 2), ("b", 3), ("a", 4)]
        + [("b", v) for v in range(5, 45)]
    )
    # close() reports the complete answer set; poll() saw a prefix.
    assert result.answers == reference.close().answers
    assert result.answers[: len(answers)] == answers


def test_snapshot_counts_without_closing():
    gateway = make_gateway()
    gateway.submit_many([("a", 1), ("b", 2)])
    gateway.submit("c", 3)
    snapshot = gateway.snapshot()
    assert snapshot["records_submitted"] == 3
    assert snapshot["batches_submitted"] == 2
    assert snapshot["num_shards"] == 2
    assert snapshot["mode"] == "global"
    assert snapshot["closed"] is False
    assert not gateway.closed
    gateway.close()
    assert gateway.snapshot()["closed"] is True


def test_close_is_idempotent_and_caches_the_result():
    gateway = make_gateway()
    gateway.submit_many([("a", v) for v in range(10)])
    first = gateway.close()
    second = gateway.close()
    assert first is second


def test_submit_after_close_raises():
    gateway = make_gateway()
    gateway.close()
    with pytest.raises(ServiceError, match="closed"):
        gateway.submit("a", 1)
    with pytest.raises(ServiceError, match="closed"):
        gateway.poll()


def test_abort_marks_closed_without_result():
    gateway = make_gateway()
    gateway.abort()
    assert gateway.closed
    with pytest.raises(ServiceError, match="aborted"):
        gateway.close()


def test_concurrent_submitters_interleave_batches_atomically():
    """Threads race whole batches; every record lands exactly once."""
    gateway = make_gateway()
    per_thread = 40
    threads = [
        threading.Thread(
            target=lambda name=name: gateway.submit_many(
                [(name, 1) for _ in range(per_thread)]
            ),
        )
        for name in ("a", "b", "c", "d")
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    snapshot = gateway.snapshot()
    assert snapshot["records_submitted"] == 4 * per_thread
    result = gateway.close()
    assert result.stats.records_submitted == 4 * per_thread
    assert result.stats.records_processed == 4 * per_thread
