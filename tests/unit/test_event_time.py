"""Unit tests for the event-time layer.

Covers the watermark primitives, the timestamped reorder buffer and
its late-record policies, the event-time error types (including their
pickle round-trips across process boundaries), the protocol-v3 frame
field, and the transport frame codec's timestamp column.
"""

from __future__ import annotations

import math
import pickle

import pytest

from repro.errors import (
    InvalidQueryError,
    LateRecordError,
    OutOfOrderError,
    ProtocolError,
)
from repro.net.protocol import (
    HEADER,
    REQUEST_TYPES,
    SUPPORTED_VERSIONS,
    Frame,
    FrameType,
    decode_answers,
    encode_answers,
    encode_frame,
    try_decode_frame_traced,
)
from repro.operators.registry import get_operator
from repro.service.transport.frame import (
    decode_frame,
    encode_batch_frame,
)
from repro.stream.engine import EventTimeEngine
from repro.stream.outoforder import (
    LATE_POLICIES,
    TimestampReorderBuffer,
)
from repro.stream.records import KeyedEvent
from repro.stream.watermark import (
    BoundedLatenessWatermark,
    TimeSliceClock,
    Watermark,
)
from repro.windows.query import Query
from repro.windows.timebased import TimeQuery, TimeWindowEngine


# -- watermark primitives -------------------------------------------


def test_watermark_is_monotone():
    wm = Watermark(0)
    assert wm.advance(3) is True
    assert wm.value == 3
    assert wm.advance(2) is False  # regression ignored
    assert wm.value == 3
    assert wm.advance(3) is False  # no-op, not an advance
    assert wm.advance(7) is True
    assert wm.value == 7


def test_bounded_lateness_watermark_tracks_high_minus_lateness():
    wm = BoundedLatenessWatermark(2.0)
    assert wm.value == -math.inf and wm.high == -math.inf
    wm.observe(10.0)
    assert wm.high == 10.0 and wm.value == 8.0
    wm.observe(5.0)  # out-of-order observation: high is monotone
    assert wm.high == 10.0 and wm.value == 8.0
    assert wm.is_late(7.999)
    assert not wm.is_late(8.0)  # exactly-at-watermark is not late


@pytest.mark.parametrize("lateness", [-1.0, math.inf, math.nan])
def test_bounded_lateness_watermark_rejects_bad_bounds(lateness):
    with pytest.raises(InvalidQueryError):
        BoundedLatenessWatermark(lateness)


def test_time_slice_clock_boundaries():
    clock = TimeSliceClock(0.5, origin=1.0)
    assert clock.slice_of(1.0) == 0
    assert clock.slice_of(1.49) == 0
    # A record exactly on a boundary belongs to the *next* slice.
    assert clock.slice_of(1.5) == 1
    assert clock.start_time(2) == 2.0
    assert clock.end_time(0) == 1.5
    # slices_closed_by: slice k is closed once the watermark passes
    # its end; -inf (nothing observed) closes nothing.
    assert clock.slices_closed_by(-math.inf) == 0
    assert clock.slices_closed_by(1.2) == 0
    assert clock.slices_closed_by(1.5) == 1
    assert clock.slices_closed_by(2.6) == 3


def test_time_slice_clock_rejects_bad_slice():
    for bad in (0.0, -1.0, math.inf, math.nan):
        with pytest.raises(InvalidQueryError):
            TimeSliceClock(bad)


# -- timestamped reorder buffer -------------------------------------


def test_reorder_buffer_releases_in_timestamp_order():
    buffer = TimestampReorderBuffer(lateness=1.0)
    released = []
    for ts in (0.5, 1.5, 0.9, 3.0, 2.2):
        released.extend(buffer.push(ts, f"r{ts}"))
    released.extend(buffer.drain())
    assert [ts for ts, _ in released] == [0.5, 0.9, 1.5, 2.2, 3.0]
    assert [item for _, item in released] == [
        "r0.5", "r0.9", "r1.5", "r2.2", "r3.0",
    ]
    assert len(buffer) == 0
    assert buffer.late_records == 0


def test_reorder_buffer_equal_timestamps_keep_arrival_order():
    buffer = TimestampReorderBuffer(lateness=0.0)
    released = []
    for item in ("a", "b", "c"):
        released.extend(buffer.push(1.0, item))
    released.extend(buffer.drain())
    assert [item for _, item in released] == ["a", "b", "c"]


def test_reorder_buffer_raise_policy():
    buffer = TimestampReorderBuffer(lateness=0.5)
    list(buffer.push(5.0, "x"))
    with pytest.raises(LateRecordError) as info:
        list(buffer.push(4.0, "late"))
    assert info.value.timestamp == 4.0
    assert info.value.watermark == 4.5
    assert info.value.lateness_bound == 0.5
    assert buffer.late_records == 1


def test_reorder_buffer_drop_and_side_output_policies():
    assert set(LATE_POLICIES) == {"raise", "drop", "side_output"}
    for policy in ("drop", "side_output"):
        seen = []
        buffer = TimestampReorderBuffer(
            lateness=0.5,
            policy=policy,
            on_late=lambda ts, item: seen.append((ts, item)),
        )
        list(buffer.push(5.0, "x"))
        assert list(buffer.push(4.0, "late")) == []
        assert buffer.late_records == 1
        assert seen == [(4.0, "late")]
        # The late record was never admitted to the heap.
        assert len(buffer) == 1


def test_reorder_buffer_rejects_unknown_policy():
    with pytest.raises(OutOfOrderError):
        TimestampReorderBuffer(lateness=1.0, policy="ignore")


@pytest.mark.parametrize("bad", [math.nan, math.inf, -math.inf])
@pytest.mark.parametrize("policy", LATE_POLICIES)
def test_reorder_buffer_rejects_nonfinite_timestamps(bad, policy):
    # A NaN would insort silently and then block the release scan
    # forever (NaN comparisons are all False); +inf would pin the
    # watermark at infinity.  Non-finite input is invalid, not late:
    # it raises under every policy and leaves the buffer untouched.
    buffer = TimestampReorderBuffer(
        lateness=1.0, policy=policy, on_late=lambda ts, item: None
    )
    list(buffer.push(5.0, "x"))
    with pytest.raises(OutOfOrderError) as info:
        buffer.push_into(bad, "bad", [])
    assert "finite" in str(info.value)
    assert buffer.late_records == 0
    assert len(buffer) == 1
    assert buffer.high == 5.0 and buffer.watermark == 4.0
    # The buffer is still fully usable afterwards.
    released = []
    buffer.push_into(6.5, "y", released)
    assert [ts for ts, _ in released] == [5.0]


def test_reorder_buffer_rejects_nonfinite_on_empty_buffer():
    for bad in (math.nan, math.inf, -math.inf):
        buffer = TimestampReorderBuffer(lateness=1.0)
        with pytest.raises(OutOfOrderError):
            buffer.push_into(bad, "bad", [])
        assert len(buffer) == 0 and buffer.watermark == -math.inf


def test_push_many_rejects_nonfinite_mid_batch_and_keeps_state():
    buffer = TimestampReorderBuffer(lateness=1.0)
    out = []
    with pytest.raises(OutOfOrderError):
        buffer.push_many_into(
            [(1.0, "a"), (math.inf, "bad"), (2.0, "never")], out
        )
    # The record before the bad one was accepted, the bad one never
    # touched the high mark, and the record after it was never read.
    assert buffer.high == 1.0 and buffer.watermark == 0.0
    assert out == [] and len(buffer) == 1
    with pytest.raises(OutOfOrderError):
        buffer.push_many_into([(math.nan, "bad")], out)
    assert out == [] and len(buffer) == 1
    released = []
    buffer.push_many_into([(5.0, "b")], released)
    assert [ts for ts, _ in released] == [1.0]


def test_push_many_matches_per_record_on_bounded_disorder():
    records = [(ts, f"r{ts}") for ts in (0.5, 1.5, 0.9, 3.0, 2.2, 4.1)]
    one = TimestampReorderBuffer(lateness=1.0)
    singly = []
    for ts, item in records:
        one.push_into(ts, item, singly)
    singly.extend(one.drain())

    many = TimestampReorderBuffer(lateness=1.0)
    batched = []
    many.push_many_into(records[:3], batched)
    many.push_many_into(records[3:], batched)
    batched.extend(many.drain())

    assert batched == singly
    assert many.watermark == one.watermark
    assert many.high == one.high


def test_push_many_watermark_advances_at_batch_granularity():
    # Per-record pushing rejects 4.0 (watermark is 4.5 once 5.0 is
    # seen); batched pushing judges mid-batch records against the
    # *previous* batch's watermark, so the same record is accepted
    # and still released in sorted order.
    buffer = TimestampReorderBuffer(lateness=0.5)
    released = []
    buffer.push_many_into([(5.0, "x"), (4.0, "in-batch")], released)
    assert buffer.late_records == 0
    assert [ts for ts, _ in released] == [4.0]
    # Across batches the bound applies as usual.
    with pytest.raises(LateRecordError):
        buffer.push_many_into([(3.0, "late")], [])
    assert buffer.late_records == 1


# -- error types ----------------------------------------------------


def test_late_record_error_attributes_and_pickle():
    error = LateRecordError(1.5, 2.0, 0.5)
    assert error.timestamp == 1.5
    assert error.watermark == 2.0
    assert error.lateness_bound == 0.5
    assert "1.5" in str(error) and "2.0" in str(error)
    clone = pickle.loads(pickle.dumps(error))
    assert isinstance(clone, LateRecordError)
    assert (clone.timestamp, clone.watermark, clone.lateness_bound) == (
        1.5, 2.0, 0.5,
    )


def test_out_of_order_error_carries_position_and_watermark():
    error = OutOfOrderError("regressed", position=3, watermark=7)
    assert error.position == 3 and error.watermark == 7
    clone = pickle.loads(pickle.dumps(error))
    assert (clone.position, clone.watermark) == (3, 7)
    assert str(clone) == "regressed"
    # Errors raised before the refactor carried no context: both
    # fields default to None and the pickle round-trip still works.
    bare = pickle.loads(pickle.dumps(OutOfOrderError("old-style")))
    assert bare.position is None and bare.watermark is None


# -- records --------------------------------------------------------


def test_keyed_event_astuple():
    event = KeyedEvent("sensor", 1.5, 42)
    assert event.astuple() == ("sensor", 1.5, 42)


# -- protocol v3 ----------------------------------------------------


def test_v3_frame_round_trips_event_time():
    raw = encode_frame(
        FrameType.SUBMIT_EVENT, ("key", 7), trace_id=None,
        event_time=12.5,
    )
    assert raw[2] == 3  # version byte
    frame, consumed = try_decode_frame_traced(raw)
    assert consumed == len(raw)
    assert frame.frame_type is FrameType.SUBMIT_EVENT
    assert frame.payload == ("key", 7)
    assert frame.trace_id is None
    assert frame.event_time == 12.5


def test_v3_frame_carries_trace_and_event_time_together():
    raw = encode_frame(
        FrameType.SUBMIT_EVENT, ("k", 1), trace_id=99, event_time=0.25
    )
    frame, _ = try_decode_frame_traced(raw)
    assert frame.trace_id == 99
    assert frame.event_time == 0.25


def test_untraced_untimed_frames_stay_v1_byte_identical():
    raw = encode_frame(FrameType.SUBMIT, ("k", 1))
    assert raw[2] == 1
    # v1 layout: header + payload, nothing between.
    assert len(raw) == HEADER.size + (len(raw) - HEADER.size)
    frame, _ = try_decode_frame_traced(raw)
    assert frame.trace_id is None and frame.event_time is None


def test_traced_untimed_frames_stay_v2():
    raw = encode_frame(FrameType.SUBMIT, ("k", 1), trace_id=5)
    assert raw[2] == 2
    frame, _ = try_decode_frame_traced(raw)
    assert frame.trace_id == 5 and frame.event_time is None


def test_v3_partial_event_field_waits_for_more_bytes():
    raw = encode_frame(FrameType.SUBMIT_EVENT, ("k", 1), event_time=1.0)
    # Cut inside the event-time field: not an error, just incomplete.
    cut = HEADER.size + 8 + 4
    assert try_decode_frame_traced(raw[:cut]) is None
    frame, _ = try_decode_frame_traced(raw)
    assert frame.event_time == 1.0


def test_event_frame_types_are_requests():
    assert FrameType.SUBMIT_EVENT in REQUEST_TYPES
    assert FrameType.SUBMIT_EVENT_BATCH in REQUEST_TYPES
    assert 3 in SUPPORTED_VERSIONS


def test_frame_tuple_defaults_event_time_none():
    frame = Frame(FrameType.POLL, None, None)
    assert frame.event_time is None


def test_answer_marshalling_round_trips_time_queries():
    tq = TimeQuery(2.0, 1.0, name="w")
    cq = Query(8, 4, name="c")
    rows = encode_answers([(3.0, tq, 17), (8, cq, 5)])
    assert rows[0] == (3.0, ("time", 2.0, 1.0, "w"), 17)
    assert rows[1] == (8, (8, 4, "c"), 5)
    decoded = decode_answers(rows)
    assert decoded == [(3.0, tq, 17), (8, cq, 5)]
    assert isinstance(decoded[0][1], TimeQuery)
    assert isinstance(decoded[1][1], Query)


def test_malformed_query_spec_raises():
    with pytest.raises(ProtocolError):
        decode_answers([(1, (2.0,), 3)])


# -- transport frame timestamp column -------------------------------


def test_columnar_frame_round_trips_timestamps():
    timestamps = [0.5, 1.25, 2.0]
    frame = encode_batch_frame(
        1, 7, 2, [10, 11, 12], ["a", "a", "b"], [1, 2, 3], None,
        timestamps,
    )
    decoded = decode_frame(memoryview(frame))
    assert list(decoded.timestamps) == timestamps
    assert list(decoded.positions) == [10, 11, 12]
    assert list(decoded.values) == [1, 2, 3]
    decoded.release()
    assert decoded.timestamps is None


def test_columnar_frame_without_timestamps_decodes_none():
    frame = encode_batch_frame(
        0, 1, None, [0, 1], ["k", "k"], [5, 6], None
    )
    decoded = decode_frame(memoryview(frame))
    assert decoded.timestamps is None
    decoded.release()


def test_columnar_frame_timestamps_compose_with_traces():
    frame = encode_batch_frame(
        0, 1, 1, [0, 1], ["k", "k"], [5, 6], [None, 42], [0.1, 0.2]
    )
    decoded = decode_frame(memoryview(frame))
    assert decoded.traces == [None, 42]
    assert list(decoded.timestamps) == [0.1, 0.2]
    decoded.release()


# -- single-node event-time engine ----------------------------------


def test_event_time_engine_matches_time_engine_on_disorder():
    queries = [TimeQuery(2.0, 1.0), TimeQuery(3.0, 1.5)]
    stream = [(tick / 10 + 0.011, tick % 7) for tick in range(80)]
    shuffled = sorted(
        stream, key=lambda r: r[0] + ((hash(r) % 9) / 10)
    )
    oracle = TimeWindowEngine(queries, get_operator("sum"))
    expected = list(oracle.run(stream))
    engine = EventTimeEngine(
        queries, get_operator("sum"), lateness=1.0
    )
    got = []
    for ts, value in shuffled:
        got.extend(engine.feed(ts, value))
    got.extend(engine.finish())
    assert got == expected


def test_event_time_engine_raises_on_late_records():
    engine = EventTimeEngine(
        [TimeQuery(1.0, 1.0)], get_operator("sum"), lateness=0.25
    )
    list(engine.feed(5.0, 1))
    with pytest.raises(LateRecordError):
        list(engine.feed(1.0, 2))
    assert engine.late_records == 1


def test_feed_many_mid_batch_late_raise_still_feeds_released_records():
    # A mid-batch late record raises, but the records its batch
    # *released* have already left the reorder buffer — they must be
    # fed downstream anyway, or every later answer is silently wrong.
    queries = [TimeQuery(1.0, 1.0)]
    engine = EventTimeEngine(
        queries, get_operator("sum"), lateness=0.5
    )
    assert engine.feed_many([(5.0, 1)]) == []
    with pytest.raises(LateRecordError):
        # 10.0 advances the watermark to 9.5 and releases (5.0, 1);
        # 1.0 is behind the previous batch's watermark (4.5) and
        # raises under the default "raise" policy.
        engine.feed_many([(10.0, 2), (1.0, 99)])
    answers = engine.finish()
    # The oracle mirrors the documented contract: (5.0, 1) WAS fed
    # downstream before the exception propagated (only the answers
    # that feed produced are lost), so every later window — including
    # the one summing the released record — is exact.
    oracle = TimeWindowEngine(queries, get_operator("sum"))
    oracle.feed(5.0, 1)  # emitted during the raising call, discarded
    expected = list(oracle.feed(10.0, 2))
    expected.extend(oracle.finish())
    assert answers == expected
    assert (6.0, queries[0], 1) in answers  # the released record counted


def test_feed_many_nonfinite_timestamp_raises_and_engine_survives():
    queries = [TimeQuery(1.0, 1.0)]
    engine = EventTimeEngine(queries, get_operator("sum"), lateness=0.5)
    with pytest.raises(OutOfOrderError):
        engine.feed_many([(1.0, 1), (math.nan, 7)])
    answers = list(engine.feed_many([(2.0, 1)]))
    answers.extend(engine.finish())
    oracle = TimeWindowEngine(queries, get_operator("sum"))
    expected = list(oracle.run([(1.0, 1), (2.0, 1)]))
    assert answers == expected


# -- non-finite timestamps at the service and wire layers -----------


@pytest.mark.parametrize("bad", [math.nan, math.inf, -math.inf])
def test_service_submit_event_rejects_nonfinite_timestamps(bad):
    from repro.service import AggregationService

    service = AggregationService(
        [TimeQuery(2.0, 1.0)],
        get_operator("sum"),
        num_shards=2,
        mode="time",
        transport="inline",
        lateness=1.0,
    )
    try:
        service.submit_event("k", 1, 5.0)
        with pytest.raises(OutOfOrderError) as info:
            service.submit_event("k", 2, bad)
        assert "finite" in str(info.value)
        # The service is still healthy: later in-order records ingest
        # and the stream closes with exact answers.
        service.submit_event("k", 3, 6.0)
        answers = list(service.poll())
        service.close()
        answers.extend(service.poll())
        oracle = EventTimeEngine(
            [TimeQuery(2.0, 1.0)], get_operator("sum"), lateness=1.0
        )
        expected = []
        for ts, value in [(5.0, 1), (6.0, 3)]:
            expected.extend(oracle.feed(ts, value))
        expected.extend(oracle.finish())
        assert answers == expected
    except BaseException:
        service.abort()
        raise


@pytest.mark.parametrize("bad", [math.nan, math.inf, -math.inf])
def test_wire_normalize_rejects_nonfinite_event_header(bad):
    from repro.net.server import _normalize_events

    with pytest.raises(ProtocolError) as info:
        _normalize_events(FrameType.SUBMIT_EVENT, ("k", 1), bad)
    assert "finite" in str(info.value)


@pytest.mark.parametrize("bad", [math.nan, math.inf, -math.inf])
def test_wire_normalize_rejects_nonfinite_batch_timestamps(bad):
    from repro.net.server import _normalize_events

    with pytest.raises(ProtocolError) as info:
        _normalize_events(
            FrameType.SUBMIT_EVENT_BATCH,
            [("k", 1.0, 10), ("k", bad, 11)],
            None,
        )
    assert "finite" in str(info.value)
