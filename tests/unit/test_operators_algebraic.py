"""Unit tests for algebraic (composed) operators."""

from __future__ import annotations

import math
import statistics

import pytest

from repro.operators.algebraic import (
    ComposedOperator,
    InvertibleComposedOperator,
    compose,
    geometric_mean_operator,
    mean_operator,
    range_operator,
    stddev_operator,
    variance_operator,
)
from repro.operators.invertible import CountOperator, SumOperator
from repro.operators.noninvertible import MaxOperator, MinOperator

DATA = [4.0, 7.0, 1.0, 9.0, 9.0, 2.0]


def test_mean_matches_statistics():
    op = mean_operator()
    assert op.lower(op.fold(DATA)) == pytest.approx(statistics.mean(DATA))


def test_mean_is_invertible_composition():
    op = mean_operator()
    assert isinstance(op, InvertibleComposedOperator)
    assert op.invertible


def test_mean_inverse_slides_window():
    op = mean_operator()
    agg = op.fold(DATA)
    agg = op.inverse(agg, op.lift(DATA[0]))
    assert op.lower(agg) == pytest.approx(statistics.mean(DATA[1:]))


def test_mean_empty_window_is_nan():
    op = mean_operator()
    assert math.isnan(op.lower(op.identity))


def test_variance_matches_statistics():
    op = variance_operator()
    assert op.lower(op.fold(DATA)) == pytest.approx(
        statistics.pvariance(DATA)
    )


def test_variance_clamps_floating_point_negatives():
    op = variance_operator()
    # A constant window has zero variance; cancellation must not
    # produce a tiny negative number.
    agg = op.fold([1e8 + 0.1] * 5)
    assert op.lower(agg) >= 0.0


def test_stddev_matches_statistics():
    op = stddev_operator()
    assert op.lower(op.fold(DATA)) == pytest.approx(
        statistics.pstdev(DATA)
    )


def test_geometric_mean_matches_statistics():
    op = geometric_mean_operator()
    assert op.lower(op.fold(DATA)) == pytest.approx(
        statistics.geometric_mean(DATA)
    )


def test_geometric_mean_requires_positive_values():
    op = geometric_mean_operator()
    with pytest.raises(ValueError):
        op.lift(-1.0)


def test_range_is_max_minus_min():
    op = range_operator()
    assert op.lower(op.fold(DATA)) == 8.0


def test_range_is_not_invertible():
    op = range_operator()
    assert not op.invertible
    assert not op.selects
    assert isinstance(op, ComposedOperator)
    assert not isinstance(op, InvertibleComposedOperator)
    assert [c.name for c in op.components] == ["max", "min"]


def test_compose_dispatches_on_component_invertibility():
    invertible = compose(
        "s+c", [SumOperator(), CountOperator()], lambda s, c: (s, c)
    )
    assert isinstance(invertible, InvertibleComposedOperator)
    mixed = compose(
        "m+s", [MaxOperator(), SumOperator()], lambda m, s: (m, s)
    )
    assert not isinstance(mixed, InvertibleComposedOperator)


def test_composed_identity_and_lift_are_componentwise():
    op = compose(
        "mm", [MaxOperator(), MinOperator()], lambda a, b: (a, b)
    )
    assert op.lift(5) == (5, 5)
    lifted = op.combine(op.identity, op.lift(5))
    assert lifted == (5, 5)


def test_composed_commutativity_flag():
    assert mean_operator().commutative
