"""Directed unit tests of DABA's internal region machinery.

The differential and property suites pin DABA's observable behaviour;
these tests walk the freeze / merge / swap paths explicitly, including
the safety valves that normal ``push`` scheduling never exercises.
"""

from __future__ import annotations

import pytest

from repro.baselines.daba import DABAAggregator
from repro.errors import WindowStateError
from repro.operators.invertible import SumOperator


def test_cold_start_first_insert_freezes_and_converts():
    agg = DABAAggregator(SumOperator(), 8)
    agg.push(5)
    # The single element was frozen, swept (trivially), and is
    # queryable; nothing is mid-flight.
    assert agg.query() == 5
    assert agg.rebuilds == 1


def test_warmup_merges_keep_frozen_at_least_back_sized():
    agg = DABAAggregator(SumOperator(), 64)
    for value in range(40):  # warm-up only, no evictions
        agg.push(value)
        frozen = len(agg._frozen) if agg._frozen is not None else 0
        merging = (
            len(agg._merging) if agg._merging is not None else 0
        )
        back = len(agg._back)
        # The next front (frozen ∪ merging) never falls behind the
        # back by more than the merge guard allows.
        assert frozen + merging + len(agg._front) - agg._head >= back - 1


def test_merge_guard_respects_completion_deadline():
    """No merge starts once 3·len(back) would exceed the window."""
    window = 12
    agg = DABAAggregator(SumOperator(), window)
    for value in range(window):
        agg.push(value)
        if agg._merging is not None:
            assert 3 * len(agg._merging) <= window


def test_steady_state_alternates_freeze_and_swap():
    window = 16
    agg = DABAAggregator(SumOperator(), window)
    for value in range(10 * window):
        agg.push(value)
    # Roughly one freeze per half-window period in steady state.
    assert agg.rebuilds >= 10
    assert agg.forced_finishes == 0


def test_manual_evict_mid_rebuild_uses_the_safety_valve():
    agg = DABAAggregator(SumOperator(), 32)
    for value in range(32):
        agg.push(value)
    # Drain the front far faster than the 1-evict-per-push schedule.
    drained = 0
    while len(agg) > 1:
        agg.evict()
        drained += 1
    assert drained == 31
    assert agg.query() == 31  # only the newest value remains
    # The off-schedule evictions may legitimately force sweeps.
    assert agg.forced_finishes >= 0


def test_evict_everything_then_raise():
    agg = DABAAggregator(SumOperator(), 4)
    for value in (1, 2, 3):
        agg.push(value)
    for _ in range(3):
        agg.evict()
    with pytest.raises(WindowStateError):
        agg.evict()


def test_evict_then_push_resumes_cleanly():
    agg = DABAAggregator(SumOperator(), 4)
    for value in (1, 2, 3, 4):
        agg.push(value)
    agg.evict()
    agg.evict()
    assert agg.query() == 7  # 3 + 4
    for value in (5, 6):
        agg.push(value)
    assert agg.query() == 3 + 4 + 5 + 6
    # Window refills and stays exact afterwards.
    for value in (7, 8, 9):
        agg.push(value)
    assert agg.query() == 6 + 7 + 8 + 9


def test_window_of_two_cycles_regions_correctly():
    agg = DABAAggregator(SumOperator(), 2)
    answers = [agg.step(v) for v in range(10)]
    assert answers == [0, 1, 3, 5, 7, 9, 11, 13, 15, 17]
    assert agg.forced_finishes == 0


def test_len_counts_all_regions():
    agg = DABAAggregator(SumOperator(), 16)
    for index, value in enumerate(range(30), start=1):
        agg.push(value)
        assert len(agg) == min(index, 16)
