"""Unit tests for SlickDeque (Non-Inv) — Algorithm 2."""

from __future__ import annotations

import pytest

from repro.baselines.recalc import RecalcAggregator, RecalcMultiAggregator
from repro.core.slickdeque_noninv import (
    ChunkedSlickDequeNonInv,
    SlickDequeNonInv,
    SlickDequeNonInvMulti,
    chunked_space_words,
)
from repro.datasets.adversarial import worst_case_slide_ops
from repro.errors import InvalidOperatorError, WindowStateError
from repro.operators.instrumented import CountingOperator, SlideOpRecorder
from repro.operators.invertible import SumOperator
from repro.operators.noninvertible import MaxOperator, MinOperator
from tests.conftest import int_stream


def test_paper_example_3():
    """Figure 9: Q1 = Max over 3, Q2 = Max over 5, slide 1."""
    stream = [6, 5, 0, 1, 3, 4, 2, 7]
    agg = SlickDequeNonInvMulti(MaxOperator(), [3, 5])
    answers = agg.run(stream)
    q1 = [a[3] for a in answers]
    q2 = [a[5] for a in answers]
    assert q1 == [6, 6, 6, 5, 3, 4, 4, 7]
    assert q2 == [6, 6, 6, 6, 6, 5, 4, 7]


def test_rejects_invertible_only_operator():
    with pytest.raises(InvalidOperatorError):
        SlickDequeNonInv(SumOperator(), 8)
    with pytest.raises(InvalidOperatorError):
        SlickDequeNonInvMulti(SumOperator(), [4])


def test_matches_recalc_max_and_min():
    stream = int_stream(300, seed=61)
    for op_class in (MaxOperator, MinOperator):
        for window in (1, 2, 9, 32):
            assert (
                SlickDequeNonInv(op_class(), window).run(stream)
                == RecalcAggregator(op_class(), window).run(stream)
            )


def test_chunked_variant_identical():
    stream = int_stream(300, seed=62)
    for window in (1, 5, 17):
        fast = SlickDequeNonInv(MaxOperator(), window).run(stream)
        chunked = ChunkedSlickDequeNonInv(
            MaxOperator(), window
        ).run(stream)
        assert fast == chunked


def test_multi_matches_recalc():
    stream = int_stream(200, seed=63)
    ranges = [1, 3, 4, 9]
    got = SlickDequeNonInvMulti(MaxOperator(), ranges).run(stream)
    expected = RecalcMultiAggregator(MaxOperator(), ranges).run(stream)
    assert got == expected


def test_amortized_below_two_ops():
    """Section 4.1: "always less than 2 operations" amortized."""
    op = CountingOperator(MaxOperator())
    agg = SlickDequeNonInv(op, 64)
    rec = SlideOpRecorder(op)
    for value in int_stream(5000, seed=64):
        agg.step(value)
        rec.mark_slide()
    assert rec.amortized_ops < 2.0


def test_query_costs_zero_ops():
    op = CountingOperator(MaxOperator())
    agg = SlickDequeNonInv(op, 16)
    for value in int_stream(50, seed=65):
        agg.push(value)
    op.reset()
    agg.query()
    assert op.ops == 0


def test_worst_case_slide_is_n_ops():
    """Section 4.1: the adversarial n-operation slide."""
    window = 32
    op = CountingOperator(MaxOperator())
    agg = SlickDequeNonInv(op, window)
    rec = SlideOpRecorder(op)
    for value in worst_case_slide_ops(window):
        agg.step(value)
        rec.mark_slide()
    assert rec.per_slide[-1] >= window - 1


def test_ascending_keeps_one_node():
    agg = SlickDequeNonInv(MaxOperator(), 16)
    for value in range(100):
        agg.push(value)
        assert agg.occupancy == 1


def test_descending_fills_deque():
    agg = SlickDequeNonInv(MaxOperator(), 16)
    for value in range(100, 0, -1):
        agg.push(value)
    assert agg.occupancy == 16


def test_ties_collapse_to_one_node():
    agg = SlickDequeNonInv(MaxOperator(), 16)
    for _ in range(50):
        agg.push(7)
        assert agg.occupancy == 1


def test_query_before_any_push_raises():
    agg = SlickDequeNonInv(MaxOperator(), 4)
    with pytest.raises(WindowStateError):
        agg.query()


def test_multi_sweep_is_comparison_only():
    """Answering n queries adds zero aggregate operations."""
    n = 16
    op = CountingOperator(MaxOperator())
    single = SlickDequeNonInv(CountingOperator(MaxOperator()), n)
    multi = SlickDequeNonInvMulti(op, list(range(1, n + 1)))
    stream = int_stream(500, seed=66)
    for value in stream:
        multi.step(value)
    single_op = single.operator
    for value in stream:
        single.step(value)
    assert op.ops == single_op.ops  # queries added nothing


class TestChunkedSpaceWords:
    def test_empty(self):
        assert chunked_space_words(0, 64) == 0

    def test_matches_formula_shape(self):
        # n nodes in sqrt(n)-sized chunks: ~2n + O(sqrt n).
        window = 1024
        words = chunked_space_words(window, window)
        assert 2 * window <= words <= 2 * window + 8 * 32 + 8

    def test_small_deque_small_footprint(self):
        assert chunked_space_words(1, 1 << 20) < 5000
