"""Unit tests for the Recalc oracle and Naive final aggregation."""

from __future__ import annotations

import pytest

from repro.baselines.base import fold_seeded, validate_ranges
from repro.baselines.naive import NaiveAggregator, NaiveMultiAggregator
from repro.baselines.recalc import RecalcAggregator, RecalcMultiAggregator
from repro.errors import InvalidQueryError
from repro.operators.instrumented import CountingOperator
from repro.operators.invertible import SumOperator
from repro.operators.noninvertible import MaxOperator


class TestFoldSeeded:
    def test_seeds_with_first_value(self):
        op = CountingOperator(SumOperator())
        assert fold_seeded(op, [1, 2, 3, 4]) == 10
        assert op.combines == 3  # n - 1, the paper's Naive accounting

    def test_empty_returns_identity(self):
        assert fold_seeded(SumOperator(), []) == 0


class TestValidateRanges:
    def test_sorted_descending_and_deduped(self):
        assert validate_ranges([3, 1, 3, 2]) == [3, 2, 1]

    def test_rejects_empty_and_nonpositive(self):
        with pytest.raises(InvalidQueryError):
            validate_ranges([])
        with pytest.raises(InvalidQueryError):
            validate_ranges([2, 0])


class TestRecalc:
    def test_window_slides(self):
        agg = RecalcAggregator(SumOperator(), 3)
        assert agg.run([1, 2, 3, 4, 5]) == [1, 3, 6, 9, 12]

    def test_multi_answers_every_range(self):
        agg = RecalcMultiAggregator(MaxOperator(), [1, 3])
        assert agg.step(5) == {1: 5, 3: 5}
        assert agg.step(2) == {1: 2, 3: 5}
        assert agg.step(1) == {1: 1, 3: 5}
        assert agg.step(4) == {1: 4, 3: 4}


class TestNaive:
    def test_matches_recalc(self):
        stream = [5, -2, 7, 7, 0, 3, -9, 1]
        for window in (1, 2, 3, 8):
            assert (
                NaiveAggregator(SumOperator(), window).run(stream)
                == RecalcAggregator(SumOperator(), window).run(stream)
            )

    def test_op_count_is_n_minus_1(self):
        op = CountingOperator(SumOperator())
        agg = NaiveAggregator(op, 8)
        for value in range(20):
            agg.step(value)
        op.reset()
        agg.step(99)
        assert op.ops == 7  # Table 1: n - 1 per slide

    def test_memory_is_n_words(self):
        assert NaiveAggregator(SumOperator(), 33).memory_words() == 33

    def test_multi_memory_independent_of_query_count(self):
        few = NaiveMultiAggregator(SumOperator(), [8, 4])
        many = NaiveMultiAggregator(SumOperator(), list(range(1, 9)))
        assert few.memory_words() == many.memory_words() == 8

    def test_multi_quadratic_ops(self):
        n = 8
        op = CountingOperator(SumOperator())
        agg = NaiveMultiAggregator(op, list(range(1, n + 1)))
        for value in range(3 * n):
            agg.step(value)
        op.reset()
        agg.step(0)
        assert op.ops == n * n // 2 - n // 2  # Table 1
