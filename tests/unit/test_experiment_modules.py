"""Unit tests for the experiment result classes and runner."""

from __future__ import annotations

import pytest

from repro.experiments import (
    exp1_throughput,
    exp2_multiquery,
    exp5_query_scaling,
)
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import (
    sweep_multi_throughput,
    sweep_single_throughput,
    workload,
)


@pytest.fixture(scope="module")
def tiny_config():
    return ExperimentConfig(
        windows=(1, 4, 16),
        multi_windows=(1, 4),
        stream_length=300,
        multi_stream_length=150,
        naive_multi_cap=4,
    )


class TestRunner:
    def test_workload_three_readings(self, tiny_config):
        streams = workload(tiny_config)
        assert len(streams) == 3
        assert all(len(s) == 300 for s in streams)
        assert streams[0] != streams[1]

    def test_single_sweep_shape(self, tiny_config):
        series = sweep_single_throughput(
            "sum", ["naive", "slickdeque"], tiny_config
        )
        assert set(series) == {"naive", "slickdeque"}
        for by_window in series.values():
            assert set(by_window) == {1, 4, 16}
            assert all(v > 0 for v in by_window.values())

    def test_multi_sweep_respects_capabilities_and_caps(
        self, tiny_config
    ):
        series = sweep_multi_throughput(
            "sum", ["naive", "twostacks", "slickdeque"], tiny_config
        )
        assert series["twostacks"] == {1: None, 4: None}
        assert series["naive"][1] is not None
        assert series["naive"][4] is not None  # at the cap
        bigger = ExperimentConfig(
            multi_windows=(8,),
            multi_stream_length=100,
            naive_multi_cap=4,
        )
        capped = sweep_multi_throughput("sum", ["naive"], bigger)
        assert capped["naive"][8] is None

    def test_progress_callback_invoked(self, tiny_config):
        seen = []
        sweep_single_throughput(
            "sum", ["slickdeque"], tiny_config, progress=seen.append
        )
        assert len(seen) == 3
        assert all("slickdeque" in line for line in seen)


class TestExp1Result:
    def test_constant_group_detection(self):
        result = exp1_throughput.Exp1Result(
            operator_name="sum",
            series={
                "flat": {16: 100.0, 64: 95.0, 256: 105.0},
                "fading": {16: 100.0, 64: 20.0, 256: 2.0},
            },
            windows=(16, 64, 256),
        )
        assert list(result.constant_group()) == ["flat"]

    def test_constant_group_ignores_tiny_windows(self):
        result = exp1_throughput.Exp1Result(
            operator_name="sum",
            series={"x": {1: 1000.0, 16: 100.0, 64: 100.0}},
            windows=(1, 16, 64),
        )
        # The window-1 outlier is excluded from the comparison.
        assert list(result.constant_group()) == ["x"]

    def test_table_title_names_the_figure(self):
        result = exp1_throughput.Exp1Result(
            "sum", {"a": {1: 1.0}}, (1,)
        )
        assert "Fig. 10" in result.table().title


class TestExp2Result:
    def test_table_title_names_the_figure(self):
        result = exp2_multiquery.Exp2Result(
            "max", {"a": {1: 1.0}}, (1,)
        )
        assert "Fig. 13" in result.table().title


class TestExp5Result:
    def test_scaling_factor(self):
        result = exp5_query_scaling.Exp5Result(
            operator_name="max",
            window=64,
            query_counts=(1, 8),
            series={"x": {1: 100.0, 8: 25.0}},
        )
        assert result.scaling_factor("x") == 4.0

    def test_run_small(self):
        result = exp5_query_scaling.run(
            "max",
            window=8,
            query_counts=(1, 4),
            stream_length=200,
            algorithms=["naive", "slickdeque"],
        )
        assert set(result.series) == {"naive", "slickdeque"}
        assert result.scaling_factor("naive") >= 1.0
