"""Unit tests for ACQ specifications."""

from __future__ import annotations

import pytest

from repro.errors import InvalidQueryError
from repro.windows.query import Query, max_range


def test_default_name():
    assert Query(6, 2).name == "q6/2"


def test_custom_name():
    assert Query(6, 2, name="revenue").name == "revenue"


def test_validation():
    with pytest.raises(InvalidQueryError):
        Query(0, 1)
    with pytest.raises(InvalidQueryError):
        Query(1, 0)
    with pytest.raises(InvalidQueryError):
        Query(-5, 2)


def test_fragments_pairs_rule():
    # f2 = range % slide, f1 = slide - f2 (paper Section 2.1).
    assert Query(8, 3).fragments == (1, 2)
    assert Query(6, 2).fragments == (2, 0)
    assert Query(5, 5).fragments == (5, 0)


def test_reports_at_multiples_of_slide():
    q = Query(6, 3)
    assert not q.reports_at(1)
    assert not q.reports_at(2)
    assert q.reports_at(3)
    assert q.reports_at(6)


def test_window_at_steady_state():
    q = Query(4, 2)
    assert list(q.window_at(10)) == [7, 8, 9, 10]


def test_window_at_warmup_clips_to_stream_start():
    q = Query(10, 1)
    assert list(q.window_at(3)) == [1, 2, 3]


def test_ordering_and_hashing():
    q_small, q_big = Query(3, 1), Query(5, 1)
    assert q_small < q_big
    assert len({Query(3, 1), Query(3, 1), q_big}) == 2


def test_max_range():
    assert max_range([Query(3, 1), Query(9, 2), Query(5, 5)]) == 9


def test_max_range_empty():
    with pytest.raises(InvalidQueryError):
        max_range([])
