"""Unit tests for shared execution plans."""

from __future__ import annotations

import pytest

from repro.errors import PlanError
from repro.windows.plan import PlanCursor, build_shared_plan
from repro.windows.query import Query


def test_example1_shared_plan():
    """Paper Example 1: slides 2 and 4, ranges 6 and 8.

    Composite slide 4, partials every 2 tuples; q6/2 answers every
    edge with 3 partials of lookback, q8/4 every second edge with 4.
    """
    plan = build_shared_plan([Query(6, 2), Query(8, 4)], "pairs")
    assert plan.cycle_length == 4
    assert plan.partials_per_cycle == 2
    assert plan.edges == (2, 4)
    assert plan.w_size == 4

    step_at_2, step_at_4 = plan.steps
    assert [sq.query.range_size for sq in step_at_2.answers] == [6]
    assert [sq.lookback for sq in step_at_2.answers] == [3]
    assert [sq.query.range_size for sq in step_at_4.answers] == [8, 6]
    assert [sq.lookback for sq in step_at_4.answers] == [4, 3]


def test_answers_ordered_descending_by_range():
    plan = build_shared_plan(
        [Query(4, 2), Query(8, 2), Query(6, 2)], "pairs"
    )
    for step in plan.steps:
        ranges = [sq.query.range_size for sq in step.answers]
        assert ranges == sorted(ranges, reverse=True)


def test_lookback_monotone_in_range_within_step():
    plan = build_shared_plan(
        [Query(7, 3), Query(5, 2), Query(10, 6)], "pairs"
    )
    for step in plan.steps:
        lookbacks = [sq.lookback for sq in step.answers]
        assert lookbacks == sorted(lookbacks, reverse=True)


def test_uniform_lookback_with_equal_slides():
    plan = build_shared_plan(
        [Query(5, 1), Query(3, 1), Query(8, 1)], "pairs"
    )
    assert plan.uniform_lookback
    assert plan.w_size == 8


def test_non_uniform_lookback_detected():
    # q3/3 windows contain 1 or 2 partials depending on phase once
    # q4/4's edges cut the cycle (worked example in plan.py docstring).
    plan = build_shared_plan([Query(3, 3), Query(4, 4)], "pairs")
    assert not plan.uniform_lookback


def test_duplicate_queries_collapse():
    plan = build_shared_plan([Query(4, 2), Query(4, 2)], "pairs")
    assert len(plan.queries) == 1


def test_cutty_rejected_for_shared_plans():
    with pytest.raises(PlanError, match="cutty"):
        build_shared_plan([Query(4, 2)], "cutty")


def test_unknown_technique_rejected():
    with pytest.raises(PlanError):
        build_shared_plan([Query(4, 2)], "nonsense")


def test_empty_query_set_rejected():
    with pytest.raises(PlanError):
        build_shared_plan([], "pairs")


def test_describe_mentions_queries():
    plan = build_shared_plan([Query(6, 2)], "pairs")
    text = plan.describe()
    assert "q6/2" in text
    assert "wSize" in text


class TestPlanCursor:
    def test_cycles_through_steps(self):
        plan = build_shared_plan([Query(6, 2), Query(8, 4)], "pairs")
        cursor = PlanCursor(plan)
        lengths = [cursor.get_next_partial_length() for _ in range(4)]
        assert lengths == [2, 2, 2, 2]

    def test_queries_follow_current_step(self):
        plan = build_shared_plan([Query(6, 2), Query(8, 4)], "pairs")
        cursor = PlanCursor(plan)
        cursor.get_next_partial_length()
        first = cursor.get_next_set_of_queries()
        assert [sq.query.range_size for sq in first] == [6]
        cursor.get_next_partial_length()
        second = cursor.get_next_set_of_queries()
        assert [sq.query.range_size for sq in second] == [8, 6]

    def test_premature_access_raises(self):
        plan = build_shared_plan([Query(6, 2)], "pairs")
        cursor = PlanCursor(plan)
        with pytest.raises(PlanError):
            cursor.get_next_set_of_queries()
        with pytest.raises(PlanError):
            _ = cursor.current_step
