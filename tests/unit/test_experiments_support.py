"""Unit tests for experiment config, report rendering, and CLI."""

from __future__ import annotations

import pytest

from repro.experiments.cli import main as cli_main
from repro.experiments.config import (
    ExperimentConfig,
    memory_windows,
    power_of_two_windows,
)
from repro.experiments.report import (
    Table,
    improvement_summary,
    series_table,
)


class TestConfig:
    def test_power_of_two_windows(self):
        assert power_of_two_windows(4) == (1, 2, 4, 8, 16)

    def test_memory_windows_include_non_powers(self):
        sizes = memory_windows(4)
        assert 6 in sizes and 12 in sizes  # 1.5x variants
        assert sizes == tuple(sorted(sizes))

    def test_quick_profile_is_small(self):
        quick = ExperimentConfig.quick()
        default = ExperimentConfig()
        assert quick.stream_length < default.stream_length
        assert max(quick.windows) < max(default.windows)

    def test_paper_profile_is_large(self):
        paper = ExperimentConfig.paper_scale()
        assert max(paper.windows) == 1 << 20
        assert paper.latency_tuples == 1_000_000


class TestReport:
    def test_table_renders_aligned(self):
        table = Table("title", ["a", "bb"])
        table.add_row([1, 2.5])
        table.add_row([None, 1234.0])
        text = table.render()
        assert "title" in text
        assert "-" in text  # None placeholder
        assert "1,234" in text

    def test_series_table_layout(self):
        series = {"x": {1: 10.0, 2: 20.0}, "y": {1: 1.0, 2: None}}
        table = series_table("t", "w", [1, 2], series, ["x", "y"])
        rendered = table.render()
        assert rendered.splitlines()[2].split() == ["w", "x", "y"]

    def test_improvement_summary_wins(self):
        series = {
            "slick": {1: 20.0, 2: 40.0},
            "rival": {1: 10.0, 2: 20.0},
        }
        text = improvement_summary(series, "slick")
        assert "+100%" in text
        assert "0/2" in text

    def test_improvement_summary_lower_is_better(self):
        series = {
            "slick": {1: 5.0},
            "rival": {1: 10.0},
        }
        text = improvement_summary(
            series, "slick", higher_is_better=False
        )
        assert "+100%" in text

    def test_improvement_summary_no_points(self):
        assert "no comparable" in improvement_summary({"slick": {}},
                                                      "slick")


class TestCli:
    def test_table1_runs(self, capsys):
        assert cli_main(["table1", "--window", "16"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out
        assert "slickdeque" in out

    def test_invalid_experiment_rejected(self):
        with pytest.raises(SystemExit):
            cli_main(["exp9"])
