"""Unit tests for the chunked-node deque (paper §4.2 storage)."""

from __future__ import annotations

from collections import deque as pydeque

import pytest

from repro.errors import WindowStateError
from repro.structures.chunked_deque import ChunkedDeque, optimal_chunk_size


def test_fifo_round_trip():
    d = ChunkedDeque(chunk_size=4)
    for value in range(10):
        d.push_back(value)
    assert [d.pop_front() for _ in range(10)] == list(range(10))
    assert len(d) == 0


def test_lifo_round_trip():
    d = ChunkedDeque(chunk_size=4)
    for value in range(10):
        d.push_back(value)
    assert [d.pop_back() for _ in range(10)] == list(range(9, -1, -1))


def test_front_and_back():
    d = ChunkedDeque(chunk_size=2)
    d.push_back("a")
    assert d.front == "a" and d.back == "a"
    d.push_back("b")
    assert d.front == "a" and d.back == "b"


def test_empty_access_raises():
    d = ChunkedDeque()
    with pytest.raises(WindowStateError):
        d.pop_front()
    with pytest.raises(WindowStateError):
        d.pop_back()
    with pytest.raises(WindowStateError):
        _ = d.front
    with pytest.raises(WindowStateError):
        _ = d.back


def test_iteration_order_front_to_back():
    d = ChunkedDeque(chunk_size=3)
    for value in range(8):
        d.push_back(value)
    d.pop_front()
    d.pop_front()
    assert list(d) == list(range(2, 8))


def test_mixed_operations_match_reference_deque():
    import random

    rng = random.Random(5)
    d = ChunkedDeque(chunk_size=3)
    ref: pydeque = pydeque()
    for step in range(2000):
        action = rng.random()
        if action < 0.5 or not ref:
            d.push_back(step)
            ref.append(step)
        elif action < 0.75:
            assert d.pop_front() == ref.popleft()
        else:
            assert d.pop_back() == ref.pop()
        assert len(d) == len(ref)
        if ref:
            assert d.front == ref[0]
            assert d.back == ref[-1]
    assert list(d) == list(ref)


def test_chunk_count_tracks_allocation():
    d = ChunkedDeque(chunk_size=4)
    assert d.chunk_count == 0
    d.push_back(1)
    assert d.chunk_count == 1
    for value in range(4):
        d.push_back(value)
    assert d.chunk_count == 2
    while d:
        d.pop_front()
    assert d.chunk_count == 0


def test_memory_words_formula():
    d = ChunkedDeque(chunk_size=4, words_per_item=2)
    for value in range(5):  # 2 chunks allocated
        d.push_back(value)
    assert d.allocated_slots() == 8
    assert d.memory_words() == 8 * 2 + 2 * 2


def test_empty_deque_costs_nothing():
    d = ChunkedDeque(chunk_size=4)
    assert d.memory_words() == 0


def test_invalid_parameters():
    with pytest.raises(WindowStateError):
        ChunkedDeque(chunk_size=0)
    with pytest.raises(WindowStateError):
        ChunkedDeque(words_per_item=0)


def test_bool_protocol():
    d = ChunkedDeque()
    assert not d
    d.push_back(1)
    assert d


class TestOptimalChunkSize:
    def test_sqrt_rule(self):
        assert optimal_chunk_size(1024) == 32
        assert optimal_chunk_size(100) == 10

    def test_small_windows(self):
        assert optimal_chunk_size(0) == 1
        assert optimal_chunk_size(1) == 1
        assert optimal_chunk_size(3) == 1
