"""Unit tests for FlatFIT (index traverser with path compression)."""

from __future__ import annotations

from repro.baselines.flatfit import (
    FlatFITAggregator,
    FlatFITMultiAggregator,
)
from repro.baselines.recalc import RecalcAggregator
from repro.operators.instrumented import CountingOperator, SlideOpRecorder
from repro.operators.invertible import SumOperator
from repro.operators.noninvertible import MaxOperator
from tests.conftest import int_stream


def test_matches_recalc():
    stream = int_stream(300, seed=21)
    for window in (1, 2, 3, 8, 17, 64):
        assert (
            FlatFITAggregator(SumOperator(), window).run(stream)
            == RecalcAggregator(SumOperator(), window).run(stream)
        )


def test_amortized_three_ops_per_slide():
    """Table 1: amortized 3 (asymptotically) in a single-query run."""
    op = CountingOperator(SumOperator())
    agg = FlatFITAggregator(op, 64)
    rec = SlideOpRecorder(op)
    for value in int_stream(64 * 40, seed=22):
        agg.step(value)
        rec.mark_slide()
    steady = rec.per_slide[2 * 64:]
    assert sum(steady) / len(steady) < 3.5


def test_window_reset_spike_is_n_minus_1():
    """The periodic reset costs n-1 ops — FlatFIT's latency spike."""
    op = CountingOperator(SumOperator())
    agg = FlatFITAggregator(op, 32)
    rec = SlideOpRecorder(op)
    for value in int_stream(32 * 20, seed=23):
        agg.step(value)
        rec.mark_slide()
    steady = rec.per_slide[2 * 32:]
    assert max(steady) == 32 - 1


def test_path_compression_makes_repeat_queries_cheap():
    op = CountingOperator(SumOperator())
    agg = FlatFITAggregator(op, 16)
    for value in range(32):
        agg.step(value)
    op.reset()
    agg.query()
    first_cost = op.ops
    op.reset()
    agg.query()  # same head, fully compressed chain
    assert op.ops <= 1 < max(2, first_cost + 1)


def test_multi_query_matches_recalc():
    stream = int_stream(100, seed=24)
    ranges = list(range(1, 13))
    agg = FlatFITMultiAggregator(MaxOperator(), ranges)
    reference = {r: RecalcAggregator(MaxOperator(), r) for r in ranges}
    for value in stream:
        answers = agg.step(value)
        for r, ref in reference.items():
            assert answers[r] == ref.step(value)


def test_max_multi_query_ops_near_n():
    """Table 1: max-multi-query FlatFIT costs ~n-1 ops per slide."""
    n = 16
    op = CountingOperator(SumOperator())
    agg = FlatFITMultiAggregator(op, list(range(1, n + 1)))
    for value in int_stream(5 * n, seed=25):
        agg.step(value)
    op.reset()
    agg.step(7)
    assert op.ops <= n
    assert op.ops >= n - 1


def test_memory_follows_paper_stack_bound():
    # Single query: 2n + 2 (§4.2: stack grows to at most 2 values).
    agg = FlatFITAggregator(SumOperator(), 16)
    assert agg.memory_words() == 2 * 16 + 2
    # Two queries: 2n + n/2; three queries: 2n + n/4; max-multi: 2n + 2.
    assert FlatFITMultiAggregator(
        SumOperator(), [16, 8]
    ).memory_words() == 2 * 16 + 8
    assert FlatFITMultiAggregator(
        SumOperator(), [16, 8, 4]
    ).memory_words() == 2 * 16 + 4
    assert FlatFITMultiAggregator(
        SumOperator(), list(range(1, 17))
    ).memory_words() == 2 * 16 + 2


def test_stack_high_water_diagnostic_recorded():
    agg = FlatFITAggregator(SumOperator(), 16)
    for value in range(40):
        agg.step(value)
    assert agg._core.stack_high_water >= 2
