"""Quality gates on the public API surface.

Deliverable (e) requires doc comments on every public item; these
tests make that a regression-checked property rather than a promise:
every public module, class, and function/method under ``repro`` must
carry a docstring, and ``__all__`` names must resolve.
"""

from __future__ import annotations

import importlib
import inspect
import pkgutil

import repro


def _public_modules():
    yield repro
    for info in pkgutil.walk_packages(
        repro.__path__, prefix="repro."
    ):
        if any(part.startswith("_") for part in info.name.split(".")):
            continue
        yield importlib.import_module(info.name)


def test_every_public_module_has_a_docstring():
    missing = [
        module.__name__
        for module in _public_modules()
        if not (module.__doc__ or "").strip()
    ]
    assert not missing, f"modules without docstrings: {missing}"


def test_every_public_class_and_function_has_a_docstring():
    missing = []
    for module in _public_modules():
        for name, member in vars(module).items():
            if name.startswith("_"):
                continue
            if getattr(member, "__module__", None) != module.__name__:
                continue  # re-exports are documented at their source
            if inspect.isclass(member):
                if not (member.__doc__ or "").strip():
                    missing.append(f"{module.__name__}.{name}")
                for attr_name, attr in vars(member).items():
                    if attr_name.startswith("_"):
                        continue
                    if not inspect.isfunction(attr):
                        continue
                    if (attr.__doc__ or "").strip():
                        continue
                    # Overrides inherit their contract from a
                    # documented base (push/query/step/combine/...).
                    inherited = any(
                        (getattr(base, attr_name, None) is not None
                         and (getattr(base, attr_name).__doc__ or "")
                         .strip())
                        for base in member.__mro__[1:]
                    )
                    if not inherited:
                        missing.append(
                            f"{module.__name__}.{name}.{attr_name}"
                        )
            elif inspect.isfunction(member):
                if not (member.__doc__ or "").strip():
                    missing.append(f"{module.__name__}.{name}")
    assert not missing, f"undocumented public items: {missing}"


def test_all_exports_resolve():
    for module in _public_modules():
        exported = getattr(module, "__all__", [])
        for name in exported:
            assert hasattr(module, name), (
                f"{module.__name__}.__all__ lists missing {name!r}"
            )


def test_package_root_exposes_the_headline_api():
    for name in (
        "Query", "SharedSlickDeque", "make_slickdeque",
        "get_operator", "get_algorithm", "TimeQuery",
        "CompatibleSharedEngine",
    ):
        assert name in repro.__all__
        assert hasattr(repro, name)
