"""Unit tests for the non-invertible (selection) operators."""

from __future__ import annotations

import math

import pytest

from repro.operators.noninvertible import (
    NEG_INF,
    POS_INF,
    AlphabeticalMaxOperator,
    ArgMaxOperator,
    ArgMinOperator,
    MaxOperator,
    MinOperator,
    argmax_of_cosine,
    argmin_of_square,
)


class TestSentinels:
    def test_neg_inf_below_everything(self):
        assert NEG_INF < 5
        assert NEG_INF < -1e300
        assert NEG_INF < "aardvark"
        assert not NEG_INF > 5

    def test_pos_inf_above_everything(self):
        assert POS_INF > 5
        assert POS_INF > 1e300
        assert not POS_INF < 5

    def test_sentinel_equality_and_hash(self):
        assert NEG_INF == type(NEG_INF)()
        assert hash(NEG_INF) == hash(type(NEG_INF)())
        assert NEG_INF != POS_INF


class TestMax:
    def test_fold(self):
        assert MaxOperator().fold([3, 9, 1]) == 9

    def test_identity_folds_away(self):
        op = MaxOperator()
        assert op.combine(op.identity, -5) == -5

    def test_selects_one_of_arguments(self):
        op = MaxOperator()
        for a in (1, 2):
            for b in (1, 2):
                assert op.combine(a, b) in (a, b)

    def test_tie_prefers_newer(self):
        class Tagged:
            def __init__(self, value, tag):
                self.value, self.tag = value, tag

            def __lt__(self, other):
                return self.value < other.value

            def __gt__(self, other):
                return self.value > other.value

        older, newer = Tagged(5, "old"), Tagged(5, "new")
        assert MaxOperator().combine(older, newer).tag == "new"

    def test_works_on_strings(self):
        assert AlphabeticalMaxOperator().fold(["pear", "apple"]) == "pear"

    def test_dominates_fast_path(self):
        op = MaxOperator()
        assert op.dominates(4, 4)
        assert op.dominates(3, 4)
        assert not op.dominates(4, 3)


class TestMin:
    def test_fold(self):
        assert MinOperator().fold([3, -9, 1]) == -9

    def test_dominates(self):
        op = MinOperator()
        assert op.dominates(4, 4)
        assert op.dominates(4, 3)
        assert not op.dominates(3, 4)


class TestArgOperators:
    def test_argmax_of_cosine(self):
        op = argmax_of_cosine()
        # cos(0)=1 beats cos(pi)=-1 and cos(pi/2)=0.
        assert op.fold([math.pi, 0.0, math.pi / 2]) == 0.0

    def test_argmin_of_square(self):
        op = argmin_of_square()
        assert op.fold([4, -1, 3]) == -1

    def test_argmax_identity(self):
        op = ArgMaxOperator(abs)
        assert op.combine(op.identity, -7) == -7

    def test_argmin_identity(self):
        op = ArgMinOperator(abs)
        assert op.combine(op.identity, -7) == -7

    def test_argmax_selects(self):
        assert ArgMaxOperator(abs).selects

    def test_custom_name(self):
        assert ArgMaxOperator(abs, name="argmax_abs").name == "argmax_abs"

    def test_dominates_uses_key(self):
        op = ArgMaxOperator(abs)
        assert op.dominates(3, -5)   # |−5| ≥ |3|
        assert not op.dominates(-5, 3)


@pytest.mark.parametrize(
    "op", [MaxOperator(), MinOperator(), ArgMaxOperator(abs)]
)
def test_noninvertible_flags(op):
    assert op.selects
    assert not op.invertible
