"""Unit tests for stream sources, sinks, and records."""

from __future__ import annotations

from repro.stream.records import Record, SensorEvent
from repro.stream.sink import (
    CallbackSink,
    CollectSink,
    CountingSink,
    LatestSink,
)
from repro.stream.source import Source, from_events, from_values
from repro.windows.query import Query


class TestRecords:
    def test_record_fields(self):
        record = Record(position=3, timestamp=0.03, value=42)
        assert record.position == 3
        assert record.value == 42

    def test_sensor_event_reading(self):
        event = SensorEvent(1, 0.0, (1.5, 2.5, 3.5))
        assert event.reading(0) == 1.5
        assert event.reading(2) == 3.5

    def test_sensor_event_default_states(self):
        assert SensorEvent(1, 0.0, (1.0, 2.0, 3.0)).states == ()


class TestSource:
    def test_plain_iteration(self):
        assert list(from_values([1, 2, 3])) == [1, 2, 3]

    def test_limit(self):
        assert list(from_values(range(100), limit=3)) == [0, 1, 2]

    def test_extract(self):
        source = Source([(1, "a"), (2, "b")], extract=lambda t: t[0])
        assert list(source) == [1, 2]

    def test_from_events(self):
        events = [
            SensorEvent(1, 0.0, (10.0, 20.0, 30.0)),
            SensorEvent(2, 0.01, (11.0, 21.0, 31.0)),
        ]
        assert list(from_events(events, reading=1)) == [20.0, 21.0]

    def test_generator_source_is_single_use(self):
        source = from_values(iter([1, 2]))
        assert list(source) == [1, 2]
        assert list(source) == []


class TestSinks:
    QUERY = Query(4, 2)

    def test_collect_sink(self):
        sink = CollectSink()
        sink.emit(2, self.QUERY, 10)
        sink.emit(4, self.QUERY, 20)
        assert sink.answers == [(2, self.QUERY, 10), (4, self.QUERY, 20)]
        assert sink.by_query() == {self.QUERY: [(2, 10), (4, 20)]}

    def test_latest_sink(self):
        sink = LatestSink()
        sink.emit(2, self.QUERY, 10)
        sink.emit(4, self.QUERY, 20)
        assert sink.latest == {self.QUERY: (4, 20)}

    def test_counting_sink(self):
        sink = CountingSink()
        for position in range(5):
            sink.emit(position, self.QUERY, 0)
        assert sink.count == 5

    def test_callback_sink(self):
        seen = []
        closed = []
        sink = CallbackSink(
            lambda p, q, a: seen.append((p, a)),
            on_close=lambda: closed.append(True),
        )
        sink.emit(1, self.QUERY, 7)
        sink.close()
        assert seen == [(1, 7)]
        assert closed == [True]
