"""Unit tests for the partial-aggregation techniques (PATs)."""

from __future__ import annotations

import pytest

from repro.errors import PlanError
from repro.windows.query import Query
from repro.windows.slicing import (
    composite_slide,
    cutty_edges,
    edges_for,
    pairs_edges,
    panes_edges,
    partial_lengths,
    punctuation_count,
)


def test_composite_slide_is_lcm():
    # Paper Example 1: slides 2 and 4 -> composite slide 4.
    assert composite_slide([Query(6, 2), Query(8, 4)]) == 4
    assert composite_slide([Query(7, 3), Query(5, 2)]) == 6


def test_composite_slide_empty_rejected():
    with pytest.raises(PlanError):
        composite_slide([])


class TestPanes:
    def test_pane_is_gcd_of_ranges_and_slides(self):
        queries = [Query(6, 2), Query(8, 4)]
        cycle = composite_slide(queries)
        # gcd(6, 8, 2, 4) = 2 -> edges every 2 tuples.
        assert panes_edges(queries, cycle) == [2, 4]

    def test_every_boundary_aligned(self):
        queries = [Query(9, 3), Query(6, 3)]
        cycle = composite_slide(queries)
        edges = panes_edges(queries, cycle)
        assert edges == [3]


class TestPairs:
    def test_example_from_paper(self):
        # Range 7, slide 3: f2 = 1, f1 = 2 -> edges at phases 2 and 0.
        queries = [Query(7, 3)]
        assert pairs_edges(queries, 3) == [2, 3]

    def test_divisible_range_needs_one_fragment(self):
        queries = [Query(6, 3)]
        assert pairs_edges(queries, 3) == [3]

    def test_union_over_queries(self):
        queries = [Query(3, 3), Query(4, 4)]
        cycle = composite_slide(queries)
        assert cycle == 12
        # q3/3: ends at 3,6,9,12 (f2=0). q4/4: ends 4,8,12 (f2=0).
        assert pairs_edges(queries, cycle) == [3, 4, 6, 8, 9, 12]

    def test_pairs_never_more_than_two_fragments_per_slide(self):
        for r in range(1, 20):
            for s in range(1, 10):
                edges = pairs_edges([Query(r, s)], s)
                assert len(edges) <= 2


class TestCutty:
    def test_edges_only_at_window_starts(self):
        # Range 7, slide 3: windows start at phase -7 ≡ 2 (mod 3).
        assert cutty_edges([Query(7, 3)], 3) == [2]

    def test_fewer_edges_than_pairs(self):
        queries = [Query(7, 3), Query(5, 2)]
        cycle = composite_slide(queries)
        assert len(cutty_edges(queries, cycle)) <= len(
            pairs_edges(queries, cycle)
        )


def test_edges_for_unknown_technique():
    with pytest.raises(PlanError, match="unknown partial aggregation"):
        edges_for("tumbling", [Query(4, 2)])


def test_partial_lengths_sum_to_cycle():
    for queries in (
        [Query(7, 3), Query(5, 2)],
        [Query(6, 2), Query(8, 4)],
        [Query(13, 5)],
    ):
        for technique in ("panes", "pairs"):
            cycle, edges = edges_for(technique, queries)
            lengths = partial_lengths(edges, cycle)
            assert sum(lengths) == cycle
            assert all(length > 0 for length in lengths)


def test_partial_lengths_empty_edges_rejected():
    with pytest.raises(PlanError):
        partial_lengths([], 4)


def test_punctuation_counts():
    queries = [Query(7, 3)]
    assert punctuation_count("panes", queries) == 0
    assert punctuation_count("pairs", queries) == 0
    assert punctuation_count("cutty", queries) == 1
