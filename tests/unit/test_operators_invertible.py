"""Unit tests for the invertible distributive operators."""

from __future__ import annotations

import pytest

from repro.operators.invertible import (
    CountOperator,
    IntProductOperator,
    ProductOperator,
    SumOfSquaresOperator,
    SumOperator,
)


class TestSum:
    def test_combine_and_inverse_round_trip(self):
        op = SumOperator()
        agg = op.combine(10, 5)
        assert agg == 15
        assert op.inverse(agg, 5) == 10

    def test_identity(self):
        op = SumOperator()
        assert op.combine(op.identity, 7) == 7
        assert op.combine(7, op.identity) == 7

    def test_flags(self):
        op = SumOperator()
        assert op.invertible and op.commutative and not op.selects


class TestCount:
    def test_lift_maps_everything_to_one(self):
        op = CountOperator()
        assert op.lift(999) == 1
        assert op.lift("anything") == 1

    def test_fold_counts(self):
        assert CountOperator().fold(["a", "b", "c"]) == 3

    def test_inverse(self):
        op = CountOperator()
        assert op.inverse(3, 1) == 2


class TestSumOfSquares:
    def test_lift_squares(self):
        assert SumOfSquaresOperator().lift(-4) == 16

    def test_fold(self):
        assert SumOfSquaresOperator().fold([1, 2, 3]) == 14


class TestProduct:
    def test_fold_without_zeros(self):
        op = ProductOperator()
        assert op.lower(op.fold([2, 3, 4])) == 24

    def test_zero_handling(self):
        op = ProductOperator()
        agg = op.fold([2, 0, 5])
        assert op.lower(agg) == 0
        # Removing the zero restores the nonzero product exactly.
        agg = op.inverse(agg, op.lift(0))
        assert op.lower(agg) == 10

    def test_inverse_after_zero_window_slides_out(self):
        op = ProductOperator()
        # Window [0, 4] -> slide out 0 -> window [4]
        agg = op.fold([0, 4])
        agg = op.inverse(agg, op.lift(0))
        assert op.lower(agg) == 4

    def test_identity_is_one_with_no_zeros(self):
        op = ProductOperator()
        assert op.lower(op.identity) == 1


class TestIntProduct:
    def test_exact_integer_division(self):
        op = IntProductOperator()
        agg = op.fold([3, 7, 11])
        agg = op.inverse(agg, op.lift(7))
        assert op.lower(agg) == 33
        assert isinstance(op.lower(agg), int)

    def test_long_window_stays_exact(self):
        op = IntProductOperator()
        values = list(range(1, 21))
        agg = op.fold(values)
        for value in values[:-1]:
            agg = op.inverse(agg, op.lift(value))
        assert op.lower(agg) == 20


@pytest.mark.parametrize(
    "op_class",
    [SumOperator, CountOperator, SumOfSquaresOperator],
)
def test_inverse_property_on_integers(op_class):
    op = op_class()
    for a in range(-3, 4):
        for b in range(-3, 4):
            la, lb = op.lift(a), op.lift(b)
            assert op.inverse(op.combine(la, lb), lb) == la
