"""Unit tests for the parametric ACQ workload generators."""

from __future__ import annotations

from repro.datasets.workloads import (
    heavy_tailed_ranges,
    ladder_ranges,
    tenant_queries,
    uniform_ranges,
)


class TestUniformRanges:
    def test_distinct_sorted_within_bounds(self):
        ranges = uniform_ranges(10, 100, seed=1)
        assert len(set(ranges)) == 10
        assert ranges == sorted(ranges)
        assert all(1 <= r <= 100 for r in ranges)

    def test_saturates_to_all_ranges(self):
        assert uniform_ranges(200, 16) == list(range(1, 17))

    def test_deterministic(self):
        assert uniform_ranges(5, 50, seed=7) == uniform_ranges(
            5, 50, seed=7
        )
        assert uniform_ranges(5, 50, seed=7) != uniform_ranges(
            5, 50, seed=8
        )


class TestLadderRanges:
    def test_powers(self):
        assert ladder_ranges(5) == [1, 2, 4, 8, 16]
        assert ladder_ranges(3, base=10) == [1, 10, 100]


class TestHeavyTailedRanges:
    def test_mostly_short(self):
        # Distinctness spreads the small values out, but the bulk of a
        # Pareto(1.5) draw still lands far below the cap.
        ranges = heavy_tailed_ranges(30, 10_000, seed=2)
        short = sum(1 for r in ranges if r <= 100)
        assert short >= 2 * len(ranges) // 3

    def test_bounds_and_uniqueness(self):
        ranges = heavy_tailed_ranges(20, 100, seed=3)
        assert len(set(ranges)) == len(ranges)
        assert all(1 <= r <= 100 for r in ranges)


class TestTenantQueries:
    def test_valid_acqs(self):
        queries = tenant_queries(12, 500, seed=4)
        assert queries
        for query in queries:
            assert 1 <= query.slide <= query.range_size
            assert query.name.startswith("tenant")

    def test_deterministic(self):
        a = tenant_queries(8, 100, seed=5)
        b = tenant_queries(8, 100, seed=5)
        assert a == b

    def test_usable_in_a_shared_plan(self):
        from repro.windows.plan import build_shared_plan

        queries = tenant_queries(6, 64, seed=6)
        plan = build_shared_plan(queries, "pairs")
        assert plan.w_size >= max(q.range_size for q in queries) // (
            max(q.slide for q in queries)
        )
