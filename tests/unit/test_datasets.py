"""Unit tests for the workload generators."""

from __future__ import annotations

import itertools

import pytest

from repro.datasets.adversarial import (
    ascending_stream,
    deque_filler,
    descending_stream,
    worst_case_slide_ops,
)
from repro.datasets.debs12 import (
    SAMPLE_RATE_HZ,
    STATE_FIELDS,
    Debs12Generator,
    debs12_array,
    debs12_events,
    debs12_values,
)
from repro.datasets.synthetic import (
    ascending,
    constant,
    descending,
    gaussian,
    materialise,
    sawtooth,
    uniform,
    uniform_ints,
)


class TestDebs12:
    def test_schema(self):
        event = next(iter(debs12_events(1)))
        assert event.position == 1
        assert event.timestamp == 0.0
        assert len(event.energy) == 3
        assert len(event.states) == STATE_FIELDS

    def test_hundred_hertz_timestamps(self):
        events = list(debs12_events(3))
        deltas = [
            events[i + 1].timestamp - events[i].timestamp
            for i in range(2)
        ]
        assert deltas == pytest.approx([1 / SAMPLE_RATE_HZ] * 2)

    def test_deterministic_under_seed(self):
        assert debs12_array(100, seed=5) == debs12_array(100, seed=5)
        assert debs12_array(100, seed=5) != debs12_array(100, seed=6)

    def test_energy_strictly_positive(self):
        assert all(v > 0 for v in debs12_values(2000))

    def test_readings_differ(self):
        a = debs12_array(50, reading=0)
        b = debs12_array(50, reading=1)
        assert a != b

    def test_autocorrelation_present(self):
        """Consecutive samples must be correlated (AR(1) shape)."""
        values = debs12_array(2000)
        mean = sum(values) / len(values)
        num = sum(
            (values[i] - mean) * (values[i + 1] - mean)
            for i in range(len(values) - 1)
        )
        den = sum((v - mean) ** 2 for v in values)
        assert num / den > 0.5

    def test_invalid_reading_rejected(self):
        with pytest.raises(ValueError):
            debs12_array(10, reading=3)

    def test_states_optional(self):
        generator = Debs12Generator(include_states=False)
        assert next(generator).states == ()


class TestSynthetic:
    def test_uniform_bounds_and_determinism(self):
        values = materialise(uniform(500, low=2.0, high=3.0, seed=1))
        assert all(2.0 <= v < 3.0 for v in values)
        assert values == materialise(
            uniform(500, low=2.0, high=3.0, seed=1)
        )

    def test_uniform_ints(self):
        values = materialise(uniform_ints(500, -5, 5, seed=2))
        assert all(isinstance(v, int) and -5 <= v <= 5 for v in values)

    def test_gaussian_mean(self):
        values = materialise(gaussian(5000, mu=10.0, seed=3))
        assert sum(values) / len(values) == pytest.approx(10.0, abs=0.2)

    def test_monotone_streams(self):
        up = materialise(ascending(10))
        down = materialise(descending(10, start=9))
        assert up == sorted(up)
        assert down == sorted(down, reverse=True)

    def test_sawtooth_period(self):
        values = materialise(sawtooth(8, period=4))
        assert values == [0, 1, 2, 3, 0, 1, 2, 3]

    def test_constant(self):
        assert materialise(constant(3, 7.0)) == [7.0, 7.0, 7.0]


class TestAdversarial:
    def test_deque_filler_cycle_shape(self):
        window = 8
        cycle = list(itertools.islice(deque_filler(window, 1), window))
        descending_part, spike = cycle[:-1], cycle[-1]
        assert descending_part == sorted(descending_part, reverse=True)
        assert spike > max(descending_part)

    def test_deque_filler_spikes_grow_across_cycles(self):
        window = 4
        values = list(deque_filler(window, cycles=3))
        spikes = values[window - 1:: window]
        assert spikes == sorted(spikes)
        assert len(values) == 3 * window

    def test_streams_are_monotone(self):
        down = list(descending_stream(10))
        up = list(ascending_stream(10))
        assert down == sorted(down, reverse=True)
        assert up == sorted(up)

    def test_worst_case_slide_ops_length(self):
        assert len(worst_case_slide_ops(16)) == 16
