"""Unit tests for the exception hierarchy."""

from __future__ import annotations

import pytest

from repro.errors import (
    ClientTimeoutError,
    InvalidOperatorError,
    InvalidQueryError,
    OutOfOrderError,
    PlanError,
    PoisonRecordError,
    ProtocolError,
    ReproError,
    ServerOverloadedError,
    ServiceError,
    ShardFailedError,
    UnknownOperatorError,
    WindowStateError,
)

ALL_ERRORS = [
    InvalidQueryError,
    InvalidOperatorError,
    WindowStateError,
    OutOfOrderError,
    PlanError,
    UnknownOperatorError,
    ServiceError,
    PoisonRecordError,
    ShardFailedError,
    ProtocolError,
    ServerOverloadedError,
    ClientTimeoutError,
]


@pytest.mark.parametrize("error", ALL_ERRORS)
def test_all_derive_from_repro_error(error):
    assert issubclass(error, ReproError)


def test_stdlib_compatible_bases():
    """Callers catching builtin exception types still work."""
    assert issubclass(InvalidQueryError, ValueError)
    assert issubclass(InvalidOperatorError, TypeError)
    assert issubclass(WindowStateError, RuntimeError)
    assert issubclass(UnknownOperatorError, KeyError)
    assert issubclass(PoisonRecordError, RuntimeError)
    assert issubclass(ShardFailedError, RuntimeError)
    assert issubclass(ProtocolError, ValueError)
    assert issubclass(ServerOverloadedError, RuntimeError)
    assert issubclass(ClientTimeoutError, TimeoutError)


def test_poison_record_error_preserves_cause_across_pickling():
    import pickle

    error = PoisonRecordError("bad record", cause="ValueError('boom')")
    clone = pickle.loads(pickle.dumps(error))
    assert str(clone) == "bad record"
    assert clone.cause == "ValueError('boom')"


def test_one_catch_all():
    with pytest.raises(ReproError):
        raise PlanError("boom")
