"""Unit tests for the exception hierarchy."""

from __future__ import annotations

import pytest

from repro.errors import (
    InvalidOperatorError,
    InvalidQueryError,
    OutOfOrderError,
    PlanError,
    ReproError,
    UnknownOperatorError,
    WindowStateError,
)

ALL_ERRORS = [
    InvalidQueryError,
    InvalidOperatorError,
    WindowStateError,
    OutOfOrderError,
    PlanError,
    UnknownOperatorError,
]


@pytest.mark.parametrize("error", ALL_ERRORS)
def test_all_derive_from_repro_error(error):
    assert issubclass(error, ReproError)


def test_stdlib_compatible_bases():
    """Callers catching builtin exception types still work."""
    assert issubclass(InvalidQueryError, ValueError)
    assert issubclass(InvalidOperatorError, TypeError)
    assert issubclass(WindowStateError, RuntimeError)
    assert issubclass(UnknownOperatorError, KeyError)


def test_one_catch_all():
    with pytest.raises(ReproError):
        raise PlanError("boom")
