"""Test package."""
