"""Unit tests for the Exp 3 spike-structure companion table."""

from __future__ import annotations

from repro.experiments.exp3_latency import spike_structure_table


def test_companion_table_shape_and_claims():
    table = spike_structure_table(window=32, slides=1024)
    rows = {row[0]: row for row in table.rows}
    assert set(rows) == {
        "naive", "flatfat", "bint", "flatfit", "twostacks", "daba",
        "slickdeque",
    }
    # The flip/reset algorithms are flagged periodic with ~n period.
    assert rows["twostacks"][4] == "yes"
    assert int(rows["twostacks"][3]) == 32
    assert rows["flatfit"][4] == "yes"
    assert int(rows["flatfit"][3]) in (32, 33)
    # The flat algorithms have no spikes at all.
    for name in ("naive", "flatfat", "daba", "slickdeque"):
        assert rows[name][4] == "no", name
        assert rows[name][3] == "-", name
    # SlickDeque (Inv) is exactly 2/2.
    assert rows["slickdeque"][1] == "2.000"
    assert rows["slickdeque"][2] == "2"


def test_companion_table_renders():
    text = spike_structure_table(window=16, slides=256).render()
    assert "spike period" in text
    assert "slickdeque" in text
