"""Unit tests for the Panes (Inv) alias and the reordered source."""

from __future__ import annotations

import random

import pytest

from repro.baselines.panes_inv import (
    PanesInvAggregator,
    SubtractOnEvictAggregator,
)
from repro.core.slickdeque_inv import SlickDequeInv
from repro.errors import OutOfOrderError
from repro.operators.instrumented import CountingOperator
from repro.operators.invertible import SumOperator
from repro.registry import available_algorithms, get_algorithm
from repro.stream.source import reordered
from tests.conftest import int_stream


class TestPanesInv:
    def test_registered_under_historical_name(self):
        spec = get_algorithm("panes_inv")
        assert spec.label == "Panes (Inv)"
        assert spec.multi is None  # the multi-query map is SlickDeque's

    def test_not_in_the_paper_comparison_set(self):
        assert "panes_inv" not in available_algorithms()

    def test_subtract_on_evict_is_the_same_algorithm(self):
        assert SubtractOnEvictAggregator is PanesInvAggregator

    def test_operation_for_operation_identical_to_slickdeque_inv(self):
        stream = int_stream(300, seed=41)
        counted_a = CountingOperator(SumOperator())
        counted_b = CountingOperator(SumOperator())
        panes = PanesInvAggregator(counted_a, 16)
        slick = SlickDequeInv(counted_b, 16)
        assert panes.run(stream) == slick.run(stream)
        assert counted_a.combines == counted_b.combines
        assert counted_a.inverses == counted_b.inverses


class TestReorderedSource:
    def test_restores_order_within_slack(self):
        rng = random.Random(9)
        values = list(range(1, 101))
        shuffled = values[:]
        # Local shuffles with displacement <= 3.
        for i in range(0, 96, 4):
            window = shuffled[i:i + 4]
            rng.shuffle(window)
            shuffled[i:i + 4] = window
        stream = [(v, v * 10) for v in shuffled]
        assert list(reordered(stream, slack=4)) == [
            v * 10 for v in values
        ]

    def test_raises_beyond_slack(self):
        stream = [(3, "c"), (4, "d"), (5, "e"), (1, "late")]
        with pytest.raises(OutOfOrderError):
            list(reordered(stream, slack=1))

    def test_feeds_an_engine_correctly(self):
        from repro.operators.registry import get_operator
        from repro.stream.engine import StreamEngine
        from repro.stream.sink import CollectSink
        from repro.windows.query import Query

        values = int_stream(60, seed=42)
        # Swap adjacent pairs: lateness 1.
        positioned = []
        for i in range(0, 60, 2):
            positioned.append((i + 2, values[i + 1]))
            positioned.append((i + 1, values[i]))
        sink = CollectSink()
        engine = StreamEngine(
            [Query(4, 2)], get_operator("sum"), sinks=[sink]
        )
        engine.run(reordered(positioned, slack=2))
        expected = [
            sum(values[max(0, t - 4):t]) for t in range(2, 61, 2)
        ]
        assert [a for _, _, a in sink.answers] == expected
