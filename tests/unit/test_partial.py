"""Unit tests for the partial aggregator."""

from __future__ import annotations

from repro.operators.invertible import SumOperator
from repro.operators.noninvertible import MaxOperator
from repro.windows.partial import PartialAggregator
from repro.windows.plan import build_shared_plan
from repro.windows.query import Query


def test_partials_fold_their_segment():
    plan = build_shared_plan([Query(6, 2), Query(8, 4)], "pairs")
    pa = PartialAggregator(SumOperator(), plan)
    completed = list(pa.feed_many(range(1, 9)))  # 1..8
    assert [c.value for c in completed] == [1 + 2, 3 + 4, 5 + 6, 7 + 8]
    assert [c.position for c in completed] == [2, 4, 6, 8]


def test_steps_cycle_with_plan():
    plan = build_shared_plan([Query(6, 2), Query(8, 4)], "pairs")
    pa = PartialAggregator(SumOperator(), plan)
    completed = list(pa.feed_many(range(8)))
    offsets = [c.step.end_offset for c in completed]
    assert offsets == [2, 4, 2, 4]


def test_open_value_visible_mid_partial():
    plan = build_shared_plan([Query(4, 2)], "pairs")
    pa = PartialAggregator(MaxOperator(), plan)
    assert pa.feed(7) is None
    assert pa.open_value == 7
    completed = pa.feed(3)
    assert completed is not None
    assert completed.value == 7
    assert pa.open_value == MaxOperator().identity


def test_positions_count_tuples():
    plan = build_shared_plan([Query(9, 3)], "pairs")
    pa = PartialAggregator(SumOperator(), plan)
    list(pa.feed_many(range(7)))
    assert pa.position == 7


def test_uneven_pairs_fragments():
    # Range 7, slide 3: fragments alternate lengths 2 and 1.
    plan = build_shared_plan([Query(7, 3)], "pairs")
    pa = PartialAggregator(SumOperator(), plan)
    completed = list(pa.feed_many([1] * 6))
    lengths = [c.step.length for c in completed]
    assert sorted(set(lengths)) == [1, 2]
    assert sum(lengths) == 6
    assert [c.value for c in completed] == lengths  # ones sum to length
