"""Unit tests for dynamic window resize (§3.1)."""

from __future__ import annotations

import pytest

from repro.baselines.naive import NaiveAggregator
from repro.baselines.recalc import RecalcAggregator
from repro.baselines.twostacks import TwoStacksAggregator
from repro.core.slickdeque_inv import SlickDequeInv
from repro.core.slickdeque_noninv import (
    ChunkedSlickDequeNonInv,
    SlickDequeNonInv,
)
from repro.errors import InvalidQueryError
from repro.operators.invertible import SumOperator
from repro.operators.noninvertible import MaxOperator
from tests.conftest import int_stream

RESIZABLE_SUM = [RecalcAggregator, NaiveAggregator, SlickDequeInv]
RESIZABLE_MAX = [
    RecalcAggregator,
    NaiveAggregator,
    SlickDequeNonInv,
    ChunkedSlickDequeNonInv,
]


def check_resize(make, operator_factory, old, new, seed):
    """Resize mid-stream; answers must match a fresh window of the new
    size fed the same retained history."""
    stream = int_stream(200, seed=seed)
    split = 120
    subject = make(operator_factory(), old)
    for value in stream[:split]:
        subject.push(value)
    subject.resize(new)
    oracle = RecalcAggregator(operator_factory(), new)
    # The oracle sees the retained history: the last min(old, new,
    # split) values before the resize, then the tail of the stream.
    retained = stream[:split][-min(old, new):]
    for value in retained:
        oracle.push(value)
    for value in stream[split:]:
        assert subject.step(value) == oracle.step(value)
    assert subject.window == new


@pytest.mark.parametrize("make", RESIZABLE_SUM)
@pytest.mark.parametrize("old,new", [(8, 16), (16, 8), (8, 8), (20, 1)])
def test_resize_sum(make, old, new):
    check_resize(make, SumOperator, old, new, seed=old * 100 + new)


@pytest.mark.parametrize("make", RESIZABLE_MAX)
@pytest.mark.parametrize("old,new", [(8, 16), (16, 8), (12, 3)])
def test_resize_max(make, old, new):
    check_resize(make, MaxOperator, old, new, seed=old * 10 + new)


def test_resize_immediately_shrinks_the_answer():
    window = SlickDequeInv(SumOperator(), 4)
    for value in (1, 2, 3, 4):
        window.push(value)
    assert window.query() == 10
    window.resize(2)
    assert window.query() == 7  # 3 + 4


def test_noninv_shrink_drops_expired_head():
    window = SlickDequeNonInv(MaxOperator(), 8)
    for value in (9, 1, 2, 3):
        window.push(value)
    assert window.query() == 9
    window.resize(3)
    assert window.query() == 3  # the 9 fell out of the new window


def test_resize_during_warmup():
    window = SlickDequeInv(SumOperator(), 10)
    window.push(5)
    window.resize(3)
    assert window.query() == 5
    assert window.step(2) == 7


def test_invalid_size_rejected():
    window = SlickDequeInv(SumOperator(), 4)
    with pytest.raises(InvalidQueryError):
        window.resize(0)


def test_unimplemented_resize_raises_not_implemented():
    window = TwoStacksAggregator(SumOperator(), 4)
    with pytest.raises(NotImplementedError, match="TwoStacks"):
        window.resize(8)
