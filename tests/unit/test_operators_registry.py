"""Unit tests for the operator registry."""

from __future__ import annotations

import pytest

from repro.errors import UnknownOperatorError
from repro.operators.base import AggregateOperator
from repro.operators.invertible import SumOperator
from repro.operators.registry import (
    available_operators,
    get_operator,
    register_operator,
)

EXPECTED_NAMES = {
    "sum", "count", "sum_of_squares", "product", "int_product",
    "max", "min", "alpha_max", "argmax_cos", "argmin_x2",
    "mean", "variance", "stddev", "geometric_mean", "range",
}


def test_all_paper_operators_are_registered():
    assert EXPECTED_NAMES <= set(available_operators())


def test_lookup_returns_fresh_instances():
    assert get_operator("sum") is not get_operator("sum")


def test_lookup_returns_operator_instances():
    for name in available_operators():
        assert isinstance(get_operator(name), AggregateOperator)


def test_unknown_name_raises_with_known_list():
    with pytest.raises(UnknownOperatorError, match="known operators"):
        get_operator("median")  # holistic: out of scope, unregistered


def test_register_custom_operator():
    register_operator("test_custom_sum", SumOperator)
    try:
        assert isinstance(get_operator("test_custom_sum"), SumOperator)
        assert "test_custom_sum" in available_operators()
    finally:
        # Keep the registry clean for other tests.
        from repro.operators import registry

        del registry._FACTORIES["test_custom_sum"]


def test_available_operators_sorted():
    names = available_operators()
    assert names == sorted(names)
