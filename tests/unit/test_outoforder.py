"""Unit tests for the slightly-out-of-order handling (§3.1)."""

from __future__ import annotations

import pytest

from repro.errors import OutOfOrderError
from repro.operators.invertible import SumOperator
from repro.operators.noninvertible import MaxOperator
from repro.stream.outoforder import ReorderBuffer, absorbable


class TestReorderBuffer:
    def test_in_order_passthrough(self):
        buffer = ReorderBuffer(slack=0)
        released = []
        for position in (1, 2, 3):
            released.extend(buffer.push(position, position * 10))
        assert released == [(1, 10), (2, 20), (3, 30)]

    def test_reorders_within_slack(self):
        buffer = ReorderBuffer(slack=2)
        items = [(2, "b"), (1, "a"), (3, "c"), (4, "d")]
        released = list(buffer.reorder(items))
        assert released == [(1, "a"), (2, "b"), (3, "c"), (4, "d")]

    def test_too_late_raises(self):
        buffer = ReorderBuffer(slack=1)
        list(buffer.push(1, "a"))
        list(buffer.push(2, "b"))  # releases 1
        list(buffer.push(3, "c"))  # releases 2
        with pytest.raises(OutOfOrderError, match="position 1"):
            list(buffer.push(1, "late"))

    def test_late_handler_routes_instead_of_raising(self):
        dropped = []
        buffer = ReorderBuffer(
            slack=0, on_late=lambda p, v: dropped.append((p, v))
        )
        list(buffer.push(2, "b"))
        list(buffer.push(1, "late"))
        assert dropped == [(1, "late")]

    def test_drain_releases_everything(self):
        buffer = ReorderBuffer(slack=10)
        list(buffer.push(2, "b"))
        list(buffer.push(1, "a"))
        assert list(buffer.drain()) == [(1, "a"), (2, "b")]

    def test_negative_slack_rejected(self):
        with pytest.raises(OutOfOrderError):
            ReorderBuffer(slack=-1)


class TestAbsorbable:
    def test_commutative_within_open_partial(self):
        assert absorbable(SumOperator(), lateness=2,
                          open_partial_length=5)
        assert absorbable(MaxOperator(), lateness=0,
                          open_partial_length=1)

    def test_beyond_open_partial_not_absorbable(self):
        assert not absorbable(SumOperator(), lateness=5,
                              open_partial_length=5)

    def test_non_commutative_never_absorbable(self):
        from repro.operators.noninvertible import ArgMaxOperator

        op = ArgMaxOperator(abs)  # declared non-commutative (ties)
        assert not absorbable(op, lateness=0, open_partial_length=9)
