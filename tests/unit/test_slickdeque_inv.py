"""Unit tests for SlickDeque (Inv) — Algorithm 1."""

from __future__ import annotations

import pytest

from repro.baselines.recalc import RecalcAggregator, RecalcMultiAggregator
from repro.core.slickdeque_inv import SlickDequeInv, SlickDequeInvMulti
from repro.errors import InvalidOperatorError
from repro.operators.algebraic import mean_operator
from repro.operators.instrumented import CountingOperator
from repro.operators.invertible import SumOperator
from repro.operators.noninvertible import MaxOperator
from tests.conftest import int_stream


def test_paper_example_2():
    """Figure 8: Q1 = Sum over 3, Q2 = Sum over 5, slide 1."""
    stream = [6, 5, 0, 1, 3, 4, 2, 7]
    agg = SlickDequeInvMulti(SumOperator(), [3, 5])
    answers = agg.run(stream)
    q1 = [a[3] for a in answers]
    q2 = [a[5] for a in answers]
    assert q1 == [6, 11, 11, 6, 4, 8, 9, 13]
    assert q2 == [6, 11, 11, 12, 15, 13, 10, 17]


def test_rejects_non_invertible_operator():
    with pytest.raises(InvalidOperatorError):
        SlickDequeInv(MaxOperator(), 8)
    with pytest.raises(InvalidOperatorError):
        SlickDequeInvMulti(MaxOperator(), [4])


def test_exactly_two_ops_per_slide():
    """Table 1: exact complexity 2 (one ⊕, one ⊖) per slide."""
    op = CountingOperator(SumOperator())
    agg = SlickDequeInv(op, 64)
    for value in range(200):
        agg.step(value)
    op.reset()
    agg.step(5)
    assert op.combines == 1
    assert op.inverses == 1


def test_exactly_2n_ops_per_slide_multi():
    """Table 1: 2n in the max-multi-query environment."""
    n = 16
    op = CountingOperator(SumOperator())
    agg = SlickDequeInvMulti(op, list(range(1, n + 1)))
    for value in range(50):
        agg.step(value)
    op.reset()
    agg.step(5)
    assert op.ops == 2 * n


def test_matches_recalc():
    stream = int_stream(300, seed=51)
    for window in (1, 2, 9, 64):
        assert (
            SlickDequeInv(SumOperator(), window).run(stream)
            == RecalcAggregator(SumOperator(), window).run(stream)
        )


def test_multi_matches_recalc():
    stream = int_stream(150, seed=52)
    ranges = [1, 2, 5, 11]
    got = SlickDequeInvMulti(SumOperator(), ranges).run(stream)
    expected = RecalcMultiAggregator(SumOperator(), ranges).run(stream)
    assert got == expected


def test_algebraic_mean_on_inv_path():
    stream = int_stream(100, seed=53)
    got = SlickDequeInv(mean_operator(), 7).run(stream)
    expected = RecalcAggregator(mean_operator(), 7).run(stream)
    assert got == pytest.approx(expected, nan_ok=True)


def test_single_query_memory_is_n_plus_1():
    """Section 4.2: n partials + the stored answer."""
    assert SlickDequeInv(SumOperator(), 40).memory_words() == 41


def test_multi_memory_is_n_plus_q():
    agg = SlickDequeInvMulti(SumOperator(), [8, 4, 2])
    assert agg.memory_words() == 8 + 3
    # Max-multi-query: 2n (Section 4.2).
    full = SlickDequeInvMulti(SumOperator(), list(range(1, 9)))
    assert full.memory_words() == 2 * 8


def test_same_range_queries_share_one_answer():
    agg = SlickDequeInvMulti(SumOperator(), [5, 5, 5])
    assert len(agg.ranges) == 1
