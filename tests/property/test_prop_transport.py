"""Property-based tests: the columnar transport is pickle-equivalent.

The zero-copy data plane's correctness claim is that swapping pickled
Queue batches for columnar shared-memory frames never changes an
answer.  That reduces to three properties checked here over random
inputs:

* value columns round-trip bit-exactly (same values, same *types*) for
  every batch the capability check accepts, and the check refuses any
  batch whose types a flat i64/f64 column could mangle;
* the dictionary key table round-trips arbitrary key objects with type
  identity;
* every single-bit corruption of a sealed frame is detected as a
  :class:`~repro.errors.TornFrameError` — the invariant the chaos
  recovery path is built on.

The per-operator sweep folds decoded columns through every registered
operator and demands exact equality with folding the pickle
round-trip, tying the transport property to the actual aggregation
semantics rather than just container equality.
"""

from __future__ import annotations

import pickle
from array import array as _array_module

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import TornFrameError
from repro.operators.registry import available_operators, get_operator
from repro.service.transport.frame import (
    FrameKind,
    decode_frame,
    encode_batch_frame,
    encode_pickled_frame,
    encode_values,
)

OPERATOR_NAMES = sorted(available_operators())

_I64_MIN = -(1 << 63)
_I64_MAX = (1 << 63) - 1


def _value_domain(operator_name):
    """Values each operator is meant to aggregate.

    ``bool_*`` deliberately produce booleans — a type the capability
    check must refuse — so the pickle-fallback branch is exercised by
    the same sweep that exercises the columnar fast path.
    """
    if operator_name in ("bool_all", "bool_any"):
        return st.booleans()
    if operator_name == "geometric_mean":
        return st.floats(min_value=1e-3, max_value=1e3)
    if operator_name in ("alpha_max", "argmax_cos"):
        return st.floats(
            min_value=-1e6, max_value=1e6, allow_nan=False
        )
    return st.integers(min_value=-(10**9), max_value=10**9)


# Key types that are never ``==`` across type boundaries, so the
# dictionary encoding cannot merge two originals of different types.
safe_keys = st.one_of(
    st.none(),
    st.text(max_size=12),
    st.binary(max_size=12),
    st.integers(min_value=-(1 << 80), max_value=1 << 80),
)


def _transport_round_trip(keys, values, traces=None):
    """Ship one batch through the codec exactly as the supervisor does.

    Returns ``(keys, values, traces, columnar)`` after the round trip:
    the columnar frame when the capability check accepts the batch,
    the pickled-frame fallback otherwise.
    """
    frame = encode_batch_frame(
        0, 1, len(values) - 1 if values else None,
        list(range(len(values))), keys, values, traces,
    )
    if frame is None:
        fallback = encode_pickled_frame(
            FrameKind.PICKLED, 0, 1, (keys, values, traces)
        )
        decoded = decode_frame(memoryview(fallback))
        out_keys, out_values, out_traces = decoded.payload
        return out_keys, out_values, out_traces, False
    decoded = decode_frame(memoryview(frame))
    out_keys = decoded.keys
    out_values = list(decoded.values)
    out_traces = decoded.traces
    decoded.release()
    return out_keys, out_values, out_traces, True


@pytest.mark.parametrize("operator_name", OPERATOR_NAMES)
@settings(max_examples=25, deadline=None)
@given(data=st.data())
def test_transport_equals_pickle_for_every_operator(operator_name, data):
    values = data.draw(
        st.lists(_value_domain(operator_name), min_size=1, max_size=40)
    )
    keys = data.draw(
        st.lists(
            st.sampled_from(["a", "b", "c"]),
            min_size=len(values),
            max_size=len(values),
        )
    )
    expected = pickle.loads(pickle.dumps(values))
    out_keys, out_values, _, columnar = _transport_round_trip(keys, values)
    assert out_keys == keys
    assert out_values == expected
    assert [type(v) for v in out_values] == [type(v) for v in expected]
    if operator_name in ("bool_all", "bool_any"):
        # Boolean batches must take the fallback: an i64 column would
        # have silently retyped them.
        assert not columnar
    operator = get_operator(operator_name)
    assert operator.fold(out_values) == operator.fold(expected)


@settings(max_examples=60, deadline=None)
@given(
    values=st.lists(
        st.one_of(
            st.integers(min_value=_I64_MIN, max_value=_I64_MAX),
            st.floats(allow_nan=False),
        ),
        max_size=40,
    )
)
def test_capability_check_accepts_exactly_uniform_numeric(values):
    encoded = encode_values(values)
    kinds = set(map(type, values))
    if not values or kinds in ({int}, {float}):
        assert encoded is not None
        body, is_float = encoded
        assert is_float == (kinds == {float})
        assert len(body) == 8 * len(values)
    else:
        assert encoded is None


@settings(max_examples=60, deadline=None)
@given(
    values=st.lists(
        st.one_of(
            st.integers(min_value=_I64_MIN, max_value=_I64_MAX),
            st.floats(allow_nan=False),
        ),
        min_size=1,
        max_size=40,
    ),
    use_memoryview=st.booleans(),
)
def test_typed_columns_encode_identically_to_boxed_lists(
    values, use_memoryview
):
    """The router's typed buffers are a pure fast path: an ``array``
    (or memoryview of one) must produce byte-identical frame bodies to
    the equivalent boxed list, for both value kinds."""
    kinds = set(map(type, values))
    if kinds == {int}:
        column = _array_module("q", values)
    elif kinds == {float}:
        column = _array_module("d", values)
    else:
        return  # mixed draws have no typed representation
    typed_input = memoryview(column) if use_memoryview else column
    typed = encode_values(typed_input)
    boxed = encode_values(list(values))
    assert typed is not None and boxed is not None
    assert typed == boxed


@settings(max_examples=60, deadline=None)
@given(
    values=st.lists(
        st.integers(min_value=-(1 << 70), max_value=1 << 70),
        min_size=1,
        max_size=30,
    )
)
def test_out_of_range_ints_fall_back_not_truncate(values):
    encoded = encode_values(values)
    if any(not (_I64_MIN <= v <= _I64_MAX) for v in values):
        assert encoded is None
    else:
        body, is_float = encoded
        assert not is_float
        # Bit-exact: the decoded column is the original list.
        assert list(memoryview(body).cast("q")) == values


@settings(max_examples=50, deadline=None)
@given(keys=st.lists(safe_keys, min_size=1, max_size=30))
def test_key_table_round_trips_with_type_identity(keys):
    values = list(range(len(keys)))
    out_keys, out_values, _, columnar = _transport_round_trip(keys, values)
    assert columnar
    assert out_values == values
    assert out_keys == keys
    assert [type(k) for k in out_keys] == [type(k) for k in keys]


@settings(max_examples=50, deadline=None)
@given(
    traces=st.lists(
        st.one_of(
            st.none(), st.integers(min_value=1, max_value=(1 << 64) - 1)
        ),
        min_size=1,
        max_size=30,
    )
)
def test_trace_column_round_trips(traces):
    keys = ["k"] * len(traces)
    values = list(range(len(traces)))
    _, out_values, out_traces, columnar = _transport_round_trip(
        keys, values, traces
    )
    assert columnar
    assert out_values == values
    if any(t is not None for t in traces):
        assert out_traces == traces
    else:
        # An all-None trace column is elided entirely.
        assert out_traces is None


@settings(max_examples=80, deadline=None)
@given(data=st.data())
def test_every_bit_flip_is_detected(data):
    values = data.draw(
        st.lists(st.integers(min_value=-100, max_value=100), max_size=20)
    )
    frame = bytearray(
        encode_batch_frame(
            1, 7, 3, list(range(len(values))), ["k"] * len(values),
            values, None,
        )
    )
    index = data.draw(st.integers(min_value=0, max_value=len(frame) - 1))
    bit = data.draw(st.integers(min_value=0, max_value=7))
    frame[index] ^= 1 << bit
    with pytest.raises(TornFrameError):
        decode_frame(memoryview(bytes(frame)))


@settings(max_examples=40, deadline=None)
@given(data=st.data())
def test_every_truncation_is_detected(data):
    frame = encode_batch_frame(
        0, 1, 9, [0, 1, 2], ["a", "b", "a"], [5, 6, 7], [1, None, 2]
    )
    cut = data.draw(st.integers(min_value=0, max_value=len(frame) - 1))
    with pytest.raises(TornFrameError):
        decode_frame(memoryview(frame[:cut]))
