"""Property-based chaos tests: faulty runs equal fault-free runs.

Two layers:

* a fast hypothesis property over the inline transport — poison
  records at arbitrary stream positions never disturb clean keys, and
  every poison record is accounted for in the dead-letter sink;
* a seeded random-schedule property over real processes (marked
  ``chaos``): :meth:`FaultInjector.random` draws worker kills,
  sub-timeout stalls, and a checkpoint corruption, and the service's
  global answers must still be byte-identical to the single-process
  engine.  The same seed always replays the same schedule, so a
  failure here is reproducible by rerunning the seed.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.operators.registry import get_operator
from repro.service import AggregationService, FaultInjector, poison
from repro.service.chaos import PoisonValue
from repro.stream.engine import StreamEngine
from repro.stream.sink import CollectSink
from repro.windows.query import Query

QUERIES = (Query(10, 3), Query(6, 2))
KEYS = ["a", "b", "c", "d", "e"]


def _per_key_expected(records):
    values_by_key = {}
    for key, value in records:
        values_by_key.setdefault(key, []).append(value)
    expected = {}
    for key, values in values_by_key.items():
        sink = CollectSink()
        StreamEngine(QUERIES, get_operator("sum"), sinks=[sink]).run(
            values
        )
        if sink.answers:
            expected[key] = sink.answers
    return expected


@settings(max_examples=25, deadline=None)
@given(
    records=st.lists(
        st.tuples(
            st.sampled_from(KEYS),
            st.integers(min_value=-50, max_value=50),
        ),
        min_size=10,
        max_size=120,
    ),
    poison_positions=st.sets(
        st.integers(min_value=0, max_value=119), max_size=4
    ),
    num_shards=st.integers(min_value=1, max_value=4),
    batch_size=st.integers(min_value=1, max_value=16),
)
def test_poison_anywhere_never_disturbs_clean_keys(
    records, poison_positions, num_shards, batch_size
):
    poisoned = list(records)
    hit = sorted(p for p in poison_positions if p < len(records))
    for offset, position in enumerate(hit):
        poisoned.insert(
            position + offset, (KEYS[offset % len(KEYS)], poison())
        )
    with AggregationService(
        QUERIES,
        get_operator("sum"),
        num_shards=num_shards,
        mode="per_key",
        batch_size=batch_size,
        transport="inline",
    ) as service:
        service.submit_many(poisoned)
        result = service.close()

    poisoned_keys = set(result.stats.degraded_keys)
    expected = _per_key_expected(records)
    for key, answers in expected.items():
        if key in poisoned_keys:
            # Exact prefix until the poison record, then quarantined.
            produced = result.per_key.get(key, [])
            assert produced == answers[: len(produced)]
        else:
            assert result.per_key.get(key, []) == answers
    # Every poison record is in the sink; no clean record joins it
    # unless its key was degraded first.
    assert len(
        [l for l in result.dead_letters if "poison value" in l.error]
    ) == len(hit)
    assert all(
        isinstance(l.value, PoisonValue) or l.key in poisoned_keys
        for l in result.dead_letters
    )
    assert result.stats.dead_letters == len(result.dead_letters)
    assert result.stats.records_processed == len(poisoned) - len(
        result.dead_letters
    )


@pytest.mark.chaos
@pytest.mark.timeout(120)
@pytest.mark.parametrize("seed", [11, 23, 37, 58])
def test_random_fault_schedule_preserves_global_answers(seed):
    records = [
        (f"key-{i % 7}", (i * 31 + seed) % 177 - 88) for i in range(500)
    ]
    injector = FaultInjector.random(
        seed=seed, num_shards=3, max_seq=12
    )
    service = AggregationService(
        QUERIES,
        get_operator("sum"),
        num_shards=3,
        batch_size=10,
        checkpoint_interval=2,
        restart_backoff=0.0,
        stall_timeout=10.0,
        heartbeat_interval=0.1,
        injector=injector,
    )
    try:
        service.submit_many(records)
        result = service.close(timeout=60.0)
    except BaseException:
        service.abort()
        raise

    sink = CollectSink()
    StreamEngine(QUERIES, get_operator("sum"), sinks=[sink]).run(
        value for _, value in records
    )
    assert result.answers == sink.answers
    assert result.stats.records_processed == len(records)
    assert not result.stats.failed_shards
    assert result.stats.dead_letters == 0
    # Kills scheduled within the shipped range actually fired and were
    # recovered from (a draw past the stream's end fires nothing; two
    # kills in quick succession on one shard can land on an
    # already-dead process and coalesce into a single recovery).
    fired = len(injector.fired("kill"))
    restores = sum(s.restores for s in result.stats.shards)
    if fired:
        assert 1 <= restores <= fired
    else:
        assert restores == 0
