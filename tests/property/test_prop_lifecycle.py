"""Property-based tests of lifecycle operations: resize + checkpoint.

These drive random interleavings of pushes, resizes, and
snapshot/restore cycles and require the subject to stay synchronized
with a model that is rebuilt from raw history at every step.
"""

from __future__ import annotations

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.naive import NaiveAggregator
from repro.baselines.recalc import RecalcAggregator
from repro.core.slickdeque_inv import SlickDequeInv
from repro.core.slickdeque_noninv import SlickDequeNonInv
from repro.operators.invertible import SumOperator
from repro.operators.noninvertible import MaxOperator
from repro.registry import available_algorithms, get_algorithm
from repro.operators.registry import get_operator
from repro.stream.checkpoint import restore, snapshot

#: Event stream: ('push', value) or ('resize', new_window).
events = st.lists(
    st.one_of(
        st.tuples(
            st.just("push"), st.integers(min_value=-99, max_value=99)
        ),
        st.tuples(st.just("resize"), st.integers(min_value=1,
                                                 max_value=24)),
    ),
    min_size=1,
    max_size=120,
)


def _model_answer(operator, history, window):
    tail = history[-window:] if window <= len(history) else history
    return operator.lower(operator.fold(tail))


@given(script=events, initial=st.integers(min_value=1, max_value=16))
@settings(max_examples=60, deadline=None)
def test_resize_interleaving_sum(script, initial):
    operator = SumOperator()
    subjects = [
        RecalcAggregator(SumOperator(), initial),
        NaiveAggregator(SumOperator(), initial),
        SlickDequeInv(SumOperator(), initial),
    ]
    history = []
    window = initial
    for action, argument in script:
        if action == "push":
            history.append(argument)
            for subject in subjects:
                subject.push(argument)
        else:
            # Growing cannot resurrect evicted data: the retained
            # history after a resize is the last min(old, new) values.
            history = history[-min(window, argument):]
            window = argument
            for subject in subjects:
                subject.resize(argument)
        if history:
            expected = _model_answer(operator, history, window)
            for subject in subjects:
                assert subject.query() == expected, type(subject)


@given(script=events, initial=st.integers(min_value=1, max_value=16))
@settings(max_examples=60, deadline=None)
def test_resize_interleaving_max(script, initial):
    operator = MaxOperator()
    subject = SlickDequeNonInv(MaxOperator(), initial)
    oracle = RecalcAggregator(MaxOperator(), initial)
    history = []
    window = initial
    pushed = False
    for action, argument in script:
        if action == "push":
            pushed = True
            history.append(argument)
            subject.push(argument)
            oracle.push(argument)
        else:
            history = history[-min(window, argument):]
            window = argument
            subject.resize(argument)
            oracle.resize(argument)
        if pushed and history:
            expected = _model_answer(operator, history, window)
            assert subject.query() == expected
            assert oracle.query() == expected


@given(
    stream=st.lists(
        st.integers(min_value=-99, max_value=99), min_size=2,
        max_size=100,
    ),
    cuts=st.sets(st.integers(min_value=1, max_value=99), max_size=3),
)
@settings(max_examples=30, deadline=None)
def test_checkpoint_chains_preserve_answers(stream, cuts):
    """Multiple snapshot/restore cycles equal an uninterrupted run."""
    rng = random.Random(1)
    del rng
    positions = sorted(c for c in cuts if c < len(stream))
    for name in available_algorithms():
        spec = get_algorithm(name)
        continuous = spec.single(get_operator("max"), 8)
        expected = continuous.run(stream)
        subject = spec.single(get_operator("max"), 8)
        produced = []
        start = 0
        for cut in positions + [len(stream)]:
            produced.extend(subject.run(stream[start:cut]))
            subject = restore(snapshot(subject))
            start = cut
        assert produced == expected, name
