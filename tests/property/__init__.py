"""Test package."""
