"""Property tests: the telemetry sketches agree with exact oracles.

Hypothesis drives random observation sets and bucket layouts through
the fixed-bucket :class:`~repro.telemetry.Histogram` and asserts it
behaves like the exact reference computed from the raw values: every
quantile answer is the resolution-limited projection of the true
rank-order statistic, merging histograms equals histogramming the
concatenation, and counters/gauges stay exact under thread hammering.
"""

from __future__ import annotations

import bisect
import math
import threading

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.telemetry import Counter, Gauge, Histogram, MetricsRegistry

values = st.floats(
    min_value=0.0, max_value=1e4, allow_nan=False, allow_infinity=False
)
observations = st.lists(values, min_size=1, max_size=80)

bucket_bounds = st.lists(
    st.floats(
        min_value=1e-3, max_value=1e4,
        allow_nan=False, allow_infinity=False,
    ),
    min_size=1,
    max_size=12,
    unique=True,
).map(sorted)

fractions = st.floats(min_value=0.0, max_value=1.0)


def oracle_bucket(bounds, value):
    """Index of the finite bucket holding ``value``; len(bounds) = +Inf."""
    return bisect.bisect_left(bounds, value)


@given(samples=observations, bounds=bucket_bounds, fraction=fractions)
@settings(max_examples=200, deadline=None)
def test_quantile_matches_sorted_reference_oracle(
    samples, bounds, fraction
):
    """quantile(q) is the exact rank statistic rounded up to its bucket.

    The sketch cannot distinguish values within a bucket, so the
    tightest claim it can honour is: take the true q-quantile from the
    sorted raw values, find the bucket it falls in, and report that
    bucket's upper bound (or the observed max in the overflow bucket).
    The histogram must match that projection exactly.
    """
    histogram = Histogram("h", buckets=bounds)
    for sample in samples:
        histogram.observe(sample)

    ordered = sorted(samples)
    rank = max(1, math.ceil(fraction * len(ordered)))
    exact = ordered[rank - 1]
    bucket = oracle_bucket(bounds, exact)
    if bucket == len(bounds):
        expected = max(samples)
    else:
        expected = bounds[bucket]

    assert histogram.quantile(fraction) == expected


@given(samples=observations, bounds=bucket_bounds)
@settings(max_examples=200, deadline=None)
def test_bucket_counts_match_exact_partition(samples, bounds):
    histogram = Histogram("h", buckets=bounds)
    for sample in samples:
        histogram.observe(sample)
    expected = [0] * (len(bounds) + 1)
    for sample in samples:
        expected[oracle_bucket(bounds, sample)] += 1
    assert histogram.bucket_counts() == expected
    assert histogram.count == len(samples)
    assert histogram.sum == pytest.approx(sum(samples))
    assert histogram.minimum == min(samples)
    assert histogram.maximum == max(samples)


@given(
    parts=st.lists(observations, min_size=1, max_size=5),
    bounds=bucket_bounds,
)
@settings(max_examples=150, deadline=None)
def test_merge_of_histograms_equals_histogram_of_concatenation(
    parts, bounds
):
    merged_parts = []
    reference = Histogram("all", buckets=bounds)
    for index, part in enumerate(parts):
        histogram = Histogram(f"part_{index}", buckets=bounds)
        for sample in part:
            histogram.observe(sample)
            reference.observe(sample)
        merged_parts.append(histogram)

    merged = Histogram.merged(merged_parts, name="merged")

    assert merged.bucket_counts() == reference.bucket_counts()
    assert merged.count == reference.count
    assert merged.sum == pytest.approx(reference.sum)
    assert merged.minimum == reference.minimum
    assert merged.maximum == reference.maximum
    for fraction in (0.0, 0.5, 0.9, 0.99, 1.0):
        assert merged.quantile(fraction) == reference.quantile(fraction)


@given(samples=observations, bounds=bucket_bounds)
@settings(max_examples=100, deadline=None)
def test_snapshot_cumulative_buckets_are_monotone_and_total(
    samples, bounds
):
    histogram = Histogram("h", buckets=bounds)
    for sample in samples:
        histogram.observe(sample)
    state = histogram.snapshot()
    cumulative = [count for _, count in state["buckets"]]
    assert all(
        earlier <= later
        for earlier, later in zip(cumulative, cumulative[1:])
    )
    assert cumulative[-1] == len(samples)
    uppers = [upper for upper, _ in state["buckets"]]
    assert uppers == list(bounds) + [math.inf]


@given(
    increments=st.lists(
        st.integers(min_value=0, max_value=1000),
        min_size=1,
        max_size=50,
    )
)
@settings(max_examples=100, deadline=None)
def test_counter_equals_running_total(increments):
    counter = Counter("c")
    total = 0
    for step in increments:
        counter.inc(step)
        total += step
        assert counter.value == total


@given(
    deltas=st.lists(
        st.integers(min_value=-500, max_value=500),
        min_size=1,
        max_size=50,
    )
)
@settings(max_examples=100, deadline=None)
def test_gauge_tracks_sum_of_deltas(deltas):
    gauge = Gauge("g")
    for delta in deltas:
        gauge.inc(delta)
    assert gauge.value == sum(deltas)


class TestThreadHammering:
    """Snapshots stay exact and internally consistent under contention."""

    def test_counter_hammered_from_many_threads(self):
        registry = MetricsRegistry()
        counter = registry.counter("hits_total")
        threads_count, per_thread = 8, 2500
        barrier = threading.Barrier(threads_count)

        def hammer():
            barrier.wait()
            for _ in range(per_thread):
                counter.inc()

        threads = [
            threading.Thread(target=hammer)
            for _ in range(threads_count)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert counter.value == threads_count * per_thread
        snap = registry.snapshot()
        assert snap["hits_total"]["series"][0]["value"] == (
            threads_count * per_thread
        )

    def test_histogram_snapshot_consistent_while_hammered(self):
        """count == sum of per-bucket counts in every live snapshot."""
        registry = MetricsRegistry()
        histogram = registry.histogram("h", buckets=[0.5, 2.0])
        stop = threading.Event()

        def hammer():
            while not stop.is_set():
                for sample in (0.1, 1.0, 5.0):
                    histogram.observe(sample)

        workers = [threading.Thread(target=hammer) for _ in range(4)]
        for worker in workers:
            worker.start()
        try:
            for _ in range(200):
                state = histogram.snapshot()
                cumulative = [count for _, count in state["buckets"]]
                assert cumulative[-1] == state["count"]
                assert all(
                    earlier <= later
                    for earlier, later in zip(
                        cumulative, cumulative[1:]
                    )
                )
        finally:
            stop.set()
            for worker in workers:
                worker.join()
        final = histogram.snapshot()
        assert final["count"] == histogram.count
        assert final["count"] % 3 == 0  # observes happen in triples
