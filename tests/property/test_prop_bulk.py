"""Property tests: bulk ingestion is indistinguishable from per-tuple.

Hypothesis drives random streams, windows, and *batch chunkings*
through every registered algorithm and a spread of operators, twice —
once tuple by tuple, once through ``push_many``/``step_many``/
``feed_many`` — and asserts the answers are identical at every batch
boundary.  Operators whose per-tuple arithmetic is itself exact
(integers, selections) must match byte-for-byte; the two operators
with float-division/transcendental inverses (``product``,
``geometric_mean``) are documented to agree to ulp precision only
(see ``docs/performance.md``) and are covered in the kernels' unit
tests instead.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.operators.registry import get_operator
from repro.registry import available_algorithms, get_algorithm
from repro.service.chaos import poison
from repro.service.partition import Batch
from repro.service.shard import ShardConfig, ShardState
from repro.stream.engine import StreamEngine
from repro.stream.sink import CollectSink
from repro.windows.query import Query

int_streams = st.lists(
    st.integers(min_value=-1000, max_value=1000), min_size=1,
    max_size=120,
)
float_streams = st.lists(
    st.floats(
        min_value=-1e6, max_value=1e6,
        allow_nan=False, allow_infinity=False,
    ),
    min_size=1,
    max_size=120,
)
windows = st.integers(min_value=1, max_value=40)
#: Batch sizes drawn per boundary; includes batches larger than any
#: window so the k >= window shortcut paths are exercised.
chunk_plans = st.lists(
    st.integers(min_value=1, max_value=60), min_size=1, max_size=40
)

#: Operators whose per-tuple arithmetic is reassociation-safe, so the
#: bulk path must be byte-identical.
EXACT_OPERATORS = (
    "sum", "count", "int_product", "mean", "max", "min", "first", "last",
)
#: Selection operators stay byte-exact even on float streams (folds
#: return actual stream elements, never derived values).
SELECTION_OPERATORS = ("max", "min", "first", "last", "argmax_cos")


def _outcome(aggregator):
    """A query's answer, or the exception type it raised."""
    try:
        return ("ok", aggregator.query())
    except Exception as error:
        return ("raised", type(error).__name__)


def _chunks(stream, plan):
    index = 0
    for size in plan:
        if index >= len(stream):
            return
        yield stream[index:index + size]
        index += size
    if index < len(stream):
        yield stream[index:]


def _pairs(operator_names, window):
    for algorithm in available_algorithms():
        spec = get_algorithm(algorithm)
        for name in operator_names:
            try:
                reference = spec.single(get_operator(name), window)
                bulk = spec.single(get_operator(name), window)
            except Exception:
                continue  # operator/algorithm capability mismatch
            yield algorithm, name, reference, bulk


@given(stream=int_streams, window=windows, plan=chunk_plans)
@settings(max_examples=25, deadline=None)
def test_push_many_matches_push_for_every_algorithm(stream, window, plan):
    for algorithm, name, reference, bulk in _pairs(EXACT_OPERATORS, window):
        for chunk in _chunks(stream, plan):
            for value in chunk:
                reference.push(value)
            bulk.push_many(chunk)
            assert _outcome(bulk) == _outcome(reference), (algorithm, name)


@given(stream=float_streams, window=windows, plan=chunk_plans)
@settings(max_examples=25, deadline=None)
def test_selection_bulk_is_byte_exact_on_floats(stream, window, plan):
    for algorithm, name, reference, bulk in _pairs(
        SELECTION_OPERATORS, window
    ):
        for chunk in _chunks(stream, plan):
            for value in chunk:
                reference.push(value)
            bulk.push_many(chunk)
            assert _outcome(bulk) == _outcome(reference), (algorithm, name)


@given(
    stream=int_streams,
    ranges=st.lists(
        st.integers(min_value=1, max_value=30), min_size=1, max_size=5
    ),
    plan=chunk_plans,
)
@settings(max_examples=25, deadline=None)
def test_step_many_matches_step_for_every_multi_algorithm(
    stream, ranges, plan
):
    for operator_name in ("sum", "max", "mean", "first"):
        for algorithm in available_algorithms(multi_query=True):
            spec = get_algorithm(algorithm)
            try:
                reference = spec.multi(get_operator(operator_name), ranges)
                bulk = spec.multi(get_operator(operator_name), ranges)
            except Exception:
                continue
            expected = [reference.step(value) for value in stream]
            produced = []
            for chunk in _chunks(stream, plan):
                produced.extend(bulk.step_many(chunk))
            assert produced == expected, (algorithm, operator_name)


@given(stream=float_streams, plan=chunk_plans)
@settings(max_examples=25, deadline=None)
def test_engine_feed_many_is_byte_exact_even_for_floats(stream, plan):
    """The engine folds through ``exact_fold``: float streams included,
    every sink triple must match the per-tuple run byte-for-byte."""
    queries = (Query(10, 3), Query(6, 2))
    for mode in ("shared", "independent"):
        for operator_name in ("sum", "mean", "max"):
            reference_sink, bulk_sink = CollectSink(), CollectSink()
            reference = StreamEngine(
                queries, get_operator(operator_name), mode=mode,
                sinks=[reference_sink],
            )
            bulk = StreamEngine(
                queries, get_operator(operator_name), mode=mode,
                sinks=[bulk_sink],
            )
            for value in stream:
                reference.feed(value)
            for chunk in _chunks(stream, plan):
                bulk.feed_many(chunk)
            assert bulk_sink.answers == reference_sink.answers, (
                mode, operator_name,
            )
            assert bulk.tuples_consumed == reference.tuples_consumed
            assert bulk.answers_emitted == reference.answers_emitted


# -- ShardState bulk vs single-record batches ------------------------

QUERIES = (Query(10, 3), Query(6, 2))
KEYS = ["a", "b", "c"]


def _drive(mode, records, batch_sizes):
    """Run records through a ShardState in the given batch framing."""
    state = ShardState(
        ShardConfig(
            shard_id=0,
            num_shards=1,
            queries=QUERIES,
            operator=get_operator("sum"),
            mode=mode,
        )
    )
    outputs = []
    seq = 0
    index = 0
    sizes = list(batch_sizes) + [len(records)]  # remainder in one batch
    for size in sizes:
        chunk = records[index:index + size]
        if not chunk:
            continue
        index += size
        seq += 1
        outputs.append(
            state.process(
                Batch(
                    shard=0,
                    seq=seq,
                    watermark=0,
                    positions=[position for position, _, _ in chunk],
                    keys=[key for _, key, _ in chunk],
                    values=[value for _, _, value in chunk],
                )
            )
        )
    # Final empty batch closes every slice (global mode).
    outputs.append(
        state.process(Batch(shard=0, seq=seq + 1, watermark=10**9))
    )
    return state, outputs


def _flatten(outputs):
    return {
        "partials": [p for o in outputs for p in o.partials],
        "answers": [a for o in outputs for a in o.key_answers],
        "dead": [
            (l.key, l.position, type(l.value).__name__)
            for o in outputs
            for l in o.dead_letters
        ],
        "degraded": sorted(
            k for o in outputs for k in o.degraded_keys
        ),
        "records": sum(o.records for o in outputs),
    }


@given(
    records=st.lists(
        st.tuples(
            st.sampled_from(KEYS),
            st.integers(min_value=-50, max_value=50),
        ),
        min_size=1,
        max_size=80,
    ),
    poison_positions=st.sets(
        st.integers(min_value=0, max_value=79), max_size=3
    ),
    plan=chunk_plans,
)
@settings(max_examples=25, deadline=None)
def test_shard_bulk_path_equals_single_record_batches(
    records, poison_positions, plan
):
    """The shard's run-grouped bulk folds — including the per-record
    replay fallback around poison records — must produce exactly the
    partials, answers, dead letters, and degraded keys that size-1
    batches (which cannot group anything) produce."""
    stamped = [
        (position + 1, key, value)
        for position, (key, value) in enumerate(records)
    ]
    for position in sorted(poison_positions):
        if position < len(stamped):
            stamped[position] = (
                stamped[position][0],
                stamped[position][1],
                poison(f"p{position}"),
            )
    for mode in ("global", "per_key"):
        _, bulk_outputs = _drive(mode, stamped, plan)
        _, tiny_outputs = _drive(mode, stamped, [1] * len(stamped))
        assert _flatten(bulk_outputs) == _flatten(tiny_outputs), mode
