"""Property-based tests: algebraic laws of the operator framework."""

from __future__ import annotations

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.operators.algebraic import (
    mean_operator,
    range_operator,
    stddev_operator,
    variance_operator,
)
from repro.operators.invertible import (
    CountOperator,
    IntProductOperator,
    SumOfSquaresOperator,
    SumOperator,
)
from repro.operators.noninvertible import (
    ArgMinOperator,
    MaxOperator,
    MinOperator,
)

ints = st.integers(min_value=-10**6, max_value=10**6)
int_lists = st.lists(ints, min_size=1, max_size=60)

SELECTION_OPS = [MaxOperator(), MinOperator(), ArgMinOperator(abs)]
INVERTIBLE_OPS = [
    SumOperator(), CountOperator(), SumOfSquaresOperator(),
]


@given(a=ints, b=ints, c=ints)
def test_associativity(a, b, c):
    for op in SELECTION_OPS + INVERTIBLE_OPS:
        la, lb, lc = op.lift(a), op.lift(b), op.lift(c)
        left = op.combine(op.combine(la, lb), lc)
        right = op.combine(la, op.combine(lb, lc))
        assert left == right, op.name


@given(a=ints)
def test_identity_laws(a):
    for op in SELECTION_OPS + INVERTIBLE_OPS + [
        mean_operator(), variance_operator(), range_operator(),
    ]:
        lifted = op.lift(a)
        assert op.combine(op.identity, lifted) == lifted, op.name
        assert op.combine(lifted, op.identity) == lifted, op.name


@given(a=ints, b=ints)
def test_inverse_cancels_combine(a, b):
    for op in INVERTIBLE_OPS + [IntProductOperator()]:
        if op.name == "int_product" and (a == 0 or b == 0):
            la, lb = op.lift(a), op.lift(b)
            assert op.lower(
                op.inverse(op.combine(la, lb), lb)
            ) == op.lower(la)
            continue
        la, lb = op.lift(a), op.lift(b)
        assert op.inverse(op.combine(la, lb), lb) == la, op.name


@given(a=ints, b=ints)
def test_selection_returns_an_argument(a, b):
    """§3.1 note: for non-invertible ⊕, x ⊕ y ∈ {x, y}."""
    for op in SELECTION_OPS:
        assert op.combine(a, b) in (a, b), op.name


@given(a=ints, b=ints)
def test_dominates_consistent_with_combine(a, b):
    for op in SELECTION_OPS:
        assert op.dominates(a, b) == (op.combine(a, b) == b), op.name


@given(values=int_lists)
def test_fold_split_distributivity(values):
    """Distributive property: fold(S) == fold(S1) ⊕ fold(S2)."""
    for op in SELECTION_OPS + INVERTIBLE_OPS:
        for split in (0, len(values) // 2, len(values)):
            left = op.fold(values[:split])
            right = op.fold(values[split:])
            assert op.combine(left, right) == op.fold(values), op.name


@given(values=int_lists)
@settings(max_examples=50)
def test_mean_and_variance_against_direct_formulas(values):
    mean_op = mean_operator()
    assert mean_op.lower(mean_op.fold(values)) == (
        sum(values) / len(values)
    )
    var_op = variance_operator()
    mean = sum(values) / len(values)
    direct = sum((v - mean) ** 2 for v in values) / len(values)
    folded = var_op.lower(var_op.fold(values))
    assert math.isclose(folded, direct, rel_tol=1e-6, abs_tol=1e-6)


@given(values=int_lists)
@settings(max_examples=50)
def test_stddev_is_sqrt_variance(values):
    stddev_op = stddev_operator()
    var_op = variance_operator()
    assert math.isclose(
        stddev_op.lower(stddev_op.fold(values)),
        math.sqrt(var_op.lower(var_op.fold(values))),
        rel_tol=1e-9,
        abs_tol=1e-12,
    )


@given(values=int_lists)
def test_range_never_negative(values):
    op = range_operator()
    assert op.lower(op.fold(values)) >= 0
