"""Property-based tests of algorithm-internal invariants.

Differential tests catch wrong answers; these catch *silent structural
corruption* — states that happen to answer correctly today but violate
the representation invariants each algorithm's complexity argument
rests on.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.daba import DABAAggregator
from repro.baselines.flatfat import FlatFATAggregator
from repro.baselines.flatfit import FlatFITAggregator
from repro.baselines.twostacks import TwoStacksAggregator
from repro.operators.invertible import SumOperator
from repro.operators.noninvertible import MaxOperator

streams = st.lists(
    st.integers(min_value=-999, max_value=999), min_size=1, max_size=150
)
windows = st.integers(min_value=1, max_value=32)


@given(stream=streams, window=windows)
@settings(max_examples=60, deadline=None)
def test_flatfat_internal_nodes_are_children_combines(stream, window):
    """Every internal node equals the combine of its two children."""
    aggregator = FlatFATAggregator(SumOperator(), window)
    tree = aggregator._tree
    for value in stream:
        aggregator.push(value)
        for index in range(1, tree.capacity):
            assert tree.nodes[index] == (
                tree.nodes[2 * index] + tree.nodes[2 * index + 1]
            )


@given(stream=streams, window=windows)
@settings(max_examples=60, deadline=None)
def test_flatfit_spans_tile_forward_to_the_head(stream, window):
    """From any in-window position, pointer jumps reach the head
    without overshooting, and every span aggregate is consistent."""
    aggregator = FlatFITAggregator(SumOperator(), window)
    core = aggregator._core
    history = []
    for value in stream:
        history.append(value)
        aggregator.step(value)
        current = core.current
        window_len = min(current, window)
        # Walk the chain from the oldest in-window position.
        position = current - window_len + 1
        guard = 0
        while True:
            slot = (position - 1) % window
            end = core.ptrs[slot]
            assert end <= current  # spans never pass the head
            # The stored span aggregate equals the raw fold.
            if position >= 1:
                expected = sum(history[position - 1:min(end, current)])
                assert core.vals[slot] == expected
            if end >= current:
                break
            position = end + 1
            guard += 1
            assert guard <= window  # chains cannot loop


@given(stream=streams, window=windows)
@settings(max_examples=60, deadline=None)
def test_twostacks_stack_aggregates_consistent(stream, window):
    """F aggs are suffix folds toward the top; B aggs prefix folds."""
    aggregator = TwoStacksAggregator(SumOperator(), window)
    for value in stream:
        aggregator.push(value)
        front, back = aggregator._front, aggregator._back
        assert len(front) + len(back) <= window
        running = 0
        for val, agg in front:  # bottom (newest) to top (oldest)
            running = val + running
            assert agg == running
        running = 0
        for val, agg in back:  # bottom (oldest) to top (newest)
            running = running + val
            assert agg == running


@given(stream=streams, window=windows)
@settings(max_examples=60, deadline=None)
def test_daba_region_totals_reconstruct_window(stream, window):
    """front/frozen/merging/back region totals fold to the window sum."""
    aggregator = DABAAggregator(SumOperator(), window)
    history = []
    for value in stream:
        history.append(value)
        aggregator.push(value)
        expected = sum(history[-window:])
        assert aggregator.query() == expected
        # Region sizes always partition the window exactly.
        assert len(aggregator) == min(len(history), window)


@given(stream=streams, window=windows)
@settings(max_examples=60, deadline=None)
def test_daba_front_suffix_aggregates_internally_consistent(
    stream, window
):
    aggregator = DABAAggregator(MaxOperator(), window)
    for value in stream:
        aggregator.push(value)
        front = aggregator._front
        head = aggregator._head
        # Each front entry's agg covers it through the front's end.
        suffix = None
        for val, agg in reversed(front[head:]):
            suffix = val if suffix is None else max(val, suffix)
            assert agg == suffix
