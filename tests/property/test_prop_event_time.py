"""Property-based tests: event-time equivalence under bounded disorder.

The contract the event-time layer sells: a stream shuffled within the
lateness bound produces *exactly* the answers of the same stream fed
in timestamp order — for every registry operator on the single-node
engine, and byte-equal through the sharded service for mergeable
operators.  Disorder beyond the bound is policy, not corruption: under
``"drop"`` both paths discard the same records and still agree.

Timestamps are drawn strictly increasing (on the 0.1s grid) so the
release order out of the reorder buffer is fully determined by the
timestamps; the jitter applied to arrival order stays strictly below
the lateness bound, which guarantees no record is ever late.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import InvalidOperatorError
from repro.operators.registry import available_operators, get_operator
from repro.service.service import AggregationService
from repro.stream.engine import EventTimeEngine
from repro.stream.outoforder import TimestampReorderBuffer
from repro.windows.timebased import TimeQuery, TimeWindowEngine

def _time_engine_supported(name):
    """Whether the time engine can run this operator at all.

    The time reduction drives a SlickDeque over *partials*, so
    operators that are neither invertible nor selection-type (e.g.
    ``range``, ``bit_and``) are rejected at construction — there is no
    in-order path to compare the shuffled path against.
    """
    try:
        TimeWindowEngine([TimeQuery(2.0, 1.0)], get_operator(name))
    except InvalidOperatorError:
        return False
    return True


OPERATOR_NAMES = [
    name
    for name in sorted(available_operators())
    if _time_engine_supported(name)
]

#: Mergeable operators with a SlickDeque path (the service's global
#: time mode requires both) whose arithmetic is exact on ints.
SERVICE_OPERATORS = ["count", "max", "mean", "min", "sum"]

LATENESS = 1.0

#: Strictly increasing arrival gaps in tenths of a second.
arrival_gaps = st.lists(
    st.integers(min_value=1, max_value=25), min_size=1, max_size=50
)

#: Per-record arrival jitter in tenths of a second, strictly below
#: the lateness bound (0.9 < 1.0) so nothing is ever late.
jitter_tenths = st.integers(min_value=0, max_value=9)


def _value_domain(operator_name):
    """Values each operator is meant to aggregate."""
    if operator_name in ("bool_all", "bool_any"):
        return st.booleans()
    if operator_name == "geometric_mean":
        return st.floats(min_value=1e-3, max_value=1e3)
    if operator_name in ("alpha_max", "argmax_cos"):
        return st.floats(
            min_value=-1e6, max_value=1e6, allow_nan=False
        )
    return st.integers(min_value=-(10**6), max_value=10**6)


def _build_stream(gaps, values):
    """A strictly-increasing timestamped stream on the 0.1s grid."""
    stream = []
    tick = 0
    for gap, value in zip(gaps, values):
        tick += gap
        stream.append((tick / 10 + 0.011, value))
    return stream


def _shuffle_within_lateness(stream, jitters):
    """Reorder arrivals by jittered timestamp, disorder < LATENESS."""
    return [
        record
        for _, record in sorted(
            (record[0] + jitters[i] / 10, record)
            for i, record in enumerate(stream)
        )
    ]


def _same_answers(got, expected):
    """Elementwise equality with NaN == NaN (mean of empty window)."""
    assert len(got) == len(expected)
    for (g_end, g_query, g_value), (e_end, e_query, e_value) in zip(
        got, expected
    ):
        assert g_end == e_end and g_query == e_query
        if e_value != e_value:  # NaN
            assert g_value != g_value
        else:
            assert g_value == e_value


@pytest.mark.parametrize("operator_name", OPERATOR_NAMES)
@settings(max_examples=20, deadline=None)
@given(data=st.data())
def test_engine_shuffled_equals_sorted_every_operator(
    operator_name, data
):
    gaps = data.draw(arrival_gaps)
    values = data.draw(
        st.lists(
            _value_domain(operator_name),
            min_size=len(gaps),
            max_size=len(gaps),
        )
    )
    jitters = data.draw(
        st.lists(
            jitter_tenths, min_size=len(gaps), max_size=len(gaps)
        )
    )
    stream = _build_stream(gaps, values)
    shuffled = _shuffle_within_lateness(stream, jitters)

    queries = [TimeQuery(2.0, 1.0), TimeQuery(3.0, 1.5)]
    oracle = TimeWindowEngine(queries, get_operator(operator_name))
    expected = list(oracle.run(stream))

    engine = EventTimeEngine(
        queries, get_operator(operator_name), lateness=LATENESS
    )
    got = []
    for timestamp, value in shuffled:
        got.extend(engine.feed(timestamp, value))
    got.extend(engine.finish())

    assert engine.late_records == 0
    _same_answers(got, expected)


@pytest.mark.parametrize("operator_name", SERVICE_OPERATORS)
@settings(max_examples=15, deadline=None)
@given(data=st.data())
def test_time_service_equals_single_node_oracle(operator_name, data):
    gaps = data.draw(arrival_gaps)
    values = data.draw(
        st.lists(
            st.integers(min_value=-(10**6), max_value=10**6),
            min_size=len(gaps),
            max_size=len(gaps),
        )
    )
    jitters = data.draw(
        st.lists(
            jitter_tenths, min_size=len(gaps), max_size=len(gaps)
        )
    )
    num_shards = data.draw(st.integers(min_value=1, max_value=3))
    stream = _build_stream(gaps, values)
    shuffled = _shuffle_within_lateness(stream, jitters)

    queries = [TimeQuery(2.0, 1.0), TimeQuery(5.0, 2.0)]
    oracle = EventTimeEngine(
        queries, get_operator(operator_name), lateness=LATENESS
    )
    expected = []
    for timestamp, value in shuffled:
        expected.extend(oracle.feed(timestamp, value))
    expected.extend(oracle.finish())

    service = AggregationService(
        queries,
        get_operator(operator_name),
        num_shards=num_shards,
        mode="time",
        transport="inline",
        lateness=LATENESS,
    )
    got = []
    try:
        for index, (timestamp, value) in enumerate(shuffled):
            service.submit_event(f"key-{index % 5}", value, timestamp)
        got.extend(service.poll())
        service.close()
        got.extend(service.poll())
    except BaseException:
        service.abort()
        raise

    _same_answers(got, expected)


@settings(max_examples=25, deadline=None)
@given(data=st.data())
def test_drop_policy_agrees_between_engine_and_service(data):
    # Unbounded jitter: some records genuinely exceed the lateness
    # bound.  Both paths must drop exactly the same ones.
    gaps = data.draw(arrival_gaps)
    values = data.draw(
        st.lists(
            st.integers(min_value=-100, max_value=100),
            min_size=len(gaps),
            max_size=len(gaps),
        )
    )
    jitters = data.draw(
        st.lists(
            st.integers(min_value=0, max_value=40),
            min_size=len(gaps),
            max_size=len(gaps),
        )
    )
    stream = _build_stream(gaps, values)
    shuffled = _shuffle_within_lateness(stream, jitters)

    queries = [TimeQuery(2.0, 1.0)]
    oracle = EventTimeEngine(
        queries,
        get_operator("sum"),
        lateness=LATENESS,
        late_policy="drop",
    )
    expected = []
    for timestamp, value in shuffled:
        expected.extend(oracle.feed(timestamp, value))
    expected.extend(oracle.finish())

    service = AggregationService(
        queries,
        get_operator("sum"),
        num_shards=2,
        mode="time",
        transport="inline",
        lateness=LATENESS,
        late_policy="drop",
    )
    got = []
    try:
        for index, (timestamp, value) in enumerate(shuffled):
            service.submit_event(f"key-{index % 3}", value, timestamp)
        got.extend(service.poll())
        result = service.close()
        got.extend(service.poll())
    except BaseException:
        service.abort()
        raise

    assert service.late_records == oracle.late_records
    assert result.stats.late_records == oracle.late_records
    assert len(result.dead_letters) == oracle.late_records
    _same_answers(got, expected)


@settings(max_examples=30, deadline=None)
@given(data=st.data())
def test_feed_many_batches_equal_sorted_oracle(data):
    gaps = data.draw(arrival_gaps)
    values = data.draw(
        st.lists(
            st.integers(min_value=-(10**6), max_value=10**6),
            min_size=len(gaps),
            max_size=len(gaps),
        )
    )
    jitters = data.draw(
        st.lists(
            jitter_tenths, min_size=len(gaps), max_size=len(gaps)
        )
    )
    batch_size = data.draw(st.integers(min_value=1, max_value=7))
    stream = _build_stream(gaps, values)
    shuffled = _shuffle_within_lateness(stream, jitters)

    queries = [TimeQuery(2.0, 1.0), TimeQuery(3.0, 1.5)]
    oracle = TimeWindowEngine(queries, get_operator("sum"))
    expected = list(oracle.run(stream))

    engine = EventTimeEngine(
        queries, get_operator("sum"), lateness=LATENESS
    )
    got = []
    for start in range(0, len(shuffled), batch_size):
        got.extend(
            engine.feed_many(shuffled[start : start + batch_size])
        )
    got.extend(engine.finish())

    assert engine.late_records == 0
    _same_answers(got, expected)


@settings(max_examples=40, deadline=None)
@given(
    timestamps=st.lists(
        st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
        min_size=1,
        max_size=60,
    ),
    lateness=st.sampled_from([0.0, 0.5, 2.0, 10.0]),
)
def test_reorder_buffer_release_order_is_sorted(timestamps, lateness):
    buffer = TimestampReorderBuffer(lateness, policy="drop")
    released = []
    for index, timestamp in enumerate(timestamps):
        released.extend(buffer.push(timestamp, index))
    released.extend(buffer.drain())
    out = [timestamp for timestamp, _ in released]
    assert out == sorted(out)
    assert len(released) + buffer.late_records == len(timestamps)
