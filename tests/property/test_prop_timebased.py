"""Property-based tests: the time-window engine vs brute force."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.operators.registry import get_operator
from repro.windows.timebased import TimeQuery, TimeWindowEngine

#: Timestamps on a 0.1s grid keep windows and arrivals commensurable
#: without floating-point hazards.
arrival_gaps = st.lists(
    st.integers(min_value=0, max_value=40),  # tenths of a second
    min_size=1,
    max_size=60,
)
durations = st.sampled_from([0.5, 1.0, 1.5, 2.0, 3.0])


@given(
    gaps=arrival_gaps,
    range_seconds=durations,
    slide_seconds=st.sampled_from([0.5, 1.0]),
    operator_name=st.sampled_from(["sum", "max", "count"]),
)
@settings(max_examples=60, deadline=None)
def test_time_engine_matches_brute_force(
    gaps, range_seconds, slide_seconds, operator_name
):
    op = get_operator(operator_name)
    # Build a non-decreasing timestamped stream on the 0.1s grid,
    # strictly inside slice boundaries to avoid float-boundary
    # ambiguity in the brute-force comparison.
    stream = []
    tick = 0
    for index, gap in enumerate(gaps):
        tick += gap
        stream.append((tick / 10 + 0.011, float(index % 13)))

    query = TimeQuery(range_seconds, slide_seconds)
    engine = TimeWindowEngine([query], op)
    got = {
        round(end, 6): answer
        for end, _, answer in engine.run(stream)
    }

    horizon = max(end for end in got) if got else 0.0
    end = slide_seconds
    while end <= horizon + 1e-9:
        key = round(end, 6)
        window = [
            v for t, v in stream if end - range_seconds <= t < end
        ]
        assert key in got
        expected = op.lower(op.fold(window))
        if expected != expected:  # NaN (mean of empty window)
            assert got[key] != got[key]
        else:
            assert got[key] == expected
        end += slide_seconds


@given(gaps=arrival_gaps)
@settings(max_examples=40, deadline=None)
def test_every_slide_answered_up_to_the_last_tuple(gaps):
    stream = []
    tick = 0
    for index, gap in enumerate(gaps):
        tick += gap
        stream.append((tick / 10 + 0.011, index))
    engine = TimeWindowEngine(
        [TimeQuery(2.0, 1.0)], get_operator("count")
    )
    answers = list(engine.run(stream))
    ends = [round(end, 6) for end, _, _ in answers]
    # Answer timestamps are consecutive slide boundaries with no gaps
    # (empty slices still answer) and no duplicates.
    assert ends == sorted(set(ends))
    for first, second in zip(ends, ends[1:]):
        assert round(second - first, 6) == 1.0
