"""Property-based tests: the storage substrate behaves like its model."""

from __future__ import annotations

from collections import deque as pydeque

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.structures.chunked_deque import ChunkedDeque
from repro.structures.circular_buffer import CircularBuffer

#: 0 = push_back, 1 = pop_front, 2 = pop_back.
operations = st.lists(
    st.integers(min_value=0, max_value=2), min_size=1, max_size=300
)


@given(ops=operations, chunk_size=st.integers(min_value=1, max_value=9))
@settings(max_examples=80, deadline=None)
def test_chunked_deque_matches_collections_deque(ops, chunk_size):
    subject = ChunkedDeque(chunk_size=chunk_size)
    model: pydeque = pydeque()
    for step, op in enumerate(ops):
        if op == 0 or not model:
            subject.push_back(step)
            model.append(step)
        elif op == 1:
            assert subject.pop_front() == model.popleft()
        else:
            assert subject.pop_back() == model.pop()
        assert len(subject) == len(model)
        if model:
            assert subject.front == model[0]
            assert subject.back == model[-1]
    assert list(subject) == list(model)


@given(ops=operations, chunk_size=st.integers(min_value=1, max_value=9))
@settings(max_examples=40, deadline=None)
def test_chunked_deque_allocation_tight(ops, chunk_size):
    """Allocated slots never exceed the items plus two end chunks."""
    subject = ChunkedDeque(chunk_size=chunk_size)
    for step, op in enumerate(ops):
        if op == 0 or not subject:
            subject.push_back(step)
        elif op == 1:
            subject.pop_front()
        else:
            subject.pop_back()
        slack = subject.allocated_slots() - len(subject)
        assert 0 <= slack <= 2 * chunk_size


@given(
    values=st.lists(st.integers(), min_size=1, max_size=120),
    capacity=st.integers(min_value=1, max_value=20),
)
@settings(max_examples=80, deadline=None)
def test_circular_buffer_retains_last_capacity_values(values, capacity):
    buf = CircularBuffer(capacity, fill=None)
    for value in values:
        expired = buf.push(value)
        # What expires is either the fill or the value pushed exactly
        # `capacity` pushes ago.
        pushed = buf.total_written
        if pushed > capacity:
            assert expired == values[pushed - capacity - 1]
        else:
            assert expired is None
    retained = values[-capacity:]
    assert list(buf) == retained
    for offset in range(1, min(capacity, len(values)) + 1):
        assert buf.at_offset(offset) == values[-offset]
