"""Property-based differential tests: every aggregator vs the oracle.

Hypothesis drives random (stream, window) pairs through every
algorithm; any divergence from from-scratch re-evaluation is a bug.
This is the library's strongest single correctness property.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.recalc import RecalcAggregator, RecalcMultiAggregator
from repro.core.slickdeque_noninv import SlickDequeNonInv
from repro.operators.instrumented import CountingOperator, SlideOpRecorder
from repro.operators.registry import get_operator
from repro.registry import available_algorithms, get_algorithm

streams = st.lists(
    st.integers(min_value=-1000, max_value=1000), min_size=1,
    max_size=200,
)
windows = st.integers(min_value=1, max_value=40)


@given(stream=streams, window=windows)
@settings(max_examples=60, deadline=None)
def test_single_query_sum_all_algorithms(stream, window):
    expected = RecalcAggregator(get_operator("sum"), window).run(stream)
    for name in available_algorithms():
        spec = get_algorithm(name)
        got = spec.single(get_operator("sum"), window).run(stream)
        assert got == expected, name


@given(stream=streams, window=windows)
@settings(max_examples=60, deadline=None)
def test_single_query_max_all_algorithms(stream, window):
    expected = RecalcAggregator(get_operator("max"), window).run(stream)
    for name in available_algorithms():
        spec = get_algorithm(name)
        got = spec.single(get_operator("max"), window).run(stream)
        assert got == expected, name


@given(
    stream=streams,
    ranges=st.lists(
        st.integers(min_value=1, max_value=30), min_size=1, max_size=6
    ),
)
@settings(max_examples=40, deadline=None)
def test_multi_query_all_algorithms(stream, ranges):
    for operator_name in ("sum", "max"):
        expected = RecalcMultiAggregator(
            get_operator(operator_name), ranges
        ).run(stream)
        for name in available_algorithms(multi_query=True):
            spec = get_algorithm(name)
            got = spec.multi(
                get_operator(operator_name), ranges
            ).run(stream)
            assert got == expected, (name, operator_name)


@given(stream=streams, window=windows)
@settings(max_examples=60, deadline=None)
def test_daba_constant_worst_case_property(stream, window):
    """No input exists that makes DABA exceed 8 ops on one slide."""
    counting = CountingOperator(get_operator("sum"))
    aggregator = get_algorithm("daba").single(counting, window)
    recorder = SlideOpRecorder(counting)
    for value in stream:
        aggregator.step(value)
        recorder.mark_slide()
    assert recorder.worst_case_ops <= 8
    assert aggregator.forced_finishes == 0


@given(stream=streams, window=windows)
@settings(max_examples=60, deadline=None)
def test_slickdeque_amortized_bound_property(stream, window):
    """§4.1: amortized ops always ≤ 2 for the selection deque."""
    counting = CountingOperator(get_operator("max"))
    aggregator = SlickDequeNonInv(counting, window)
    for value in stream:
        aggregator.step(value)
    assert counting.ops <= 2 * len(stream)


@given(stream=streams, window=windows)
@settings(max_examples=60, deadline=None)
def test_deque_invariants_property(stream, window):
    """Positions strictly increase; values strictly 'descend' (no
    node dominated by a later one); occupancy ≤ window."""
    op = get_operator("max")
    aggregator = SlickDequeNonInv(op, window)
    for value in stream:
        aggregator.push(value)
        nodes = list(aggregator._nodes)
        assert len(nodes) <= window
        positions = [pos for pos, _ in nodes]
        assert positions == sorted(positions)
        values = [val for _, val in nodes]
        for older, newer in zip(values, values[1:]):
            assert not op.dominates(older, newer)


@given(stream=streams, window=windows)
@settings(max_examples=40, deadline=None)
def test_memory_words_positive_and_bounded(stream, window):
    """Every algorithm's footprint is positive and O(window)."""
    for name in available_algorithms():
        spec = get_algorithm(name)
        aggregator = spec.single(get_operator("sum"), window)
        for value in stream:
            aggregator.push(value)
        words = aggregator.memory_words()
        assert 0 < words <= 4 * window + 8 * (int(window**0.5) + 3), name
