"""Property-based tests: sharded execution equals single-process.

The sharded service's whole correctness argument — slice-aligned
partial folding per shard, commutative cross-shard recombination,
plan-driven final aggregation — is checked here against the
single-process engine over random keyed streams, query sets, shard
counts, and batch sizes.  The inline transport keeps hypothesis fast
and deterministic while exercising the identical partition/merge code
paths the process transport ships through queues.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.operators.registry import get_operator
from repro.service import AggregationService
from repro.stream.engine import StreamEngine
from repro.stream.sink import CollectSink
from repro.windows.query import Query

queries_strategy = st.lists(
    st.builds(
        Query,
        st.integers(min_value=1, max_value=16),
        st.integers(min_value=1, max_value=5),
    ),
    min_size=1,
    max_size=3,
    unique=True,
)

keyed_streams = st.lists(
    st.tuples(
        st.sampled_from(["a", "b", "c", "d", "e", "f"]),
        st.integers(min_value=-100, max_value=100),
    ),
    min_size=1,
    max_size=150,
)


def _engine_answers(queries, operator_name, values):
    sink = CollectSink()
    engine = StreamEngine(
        queries, get_operator(operator_name), sinks=[sink]
    )
    engine.run(values)
    return sink.answers


@settings(max_examples=40, deadline=None)
@given(
    queries=queries_strategy,
    records=keyed_streams,
    operator_name=st.sampled_from(["sum", "max", "count", "mean"]),
    num_shards=st.integers(min_value=1, max_value=5),
    batch_size=st.integers(min_value=1, max_value=32),
    technique=st.sampled_from(["panes", "pairs"]),
)
def test_sharded_global_answers_equal_single_process(
    queries, records, operator_name, num_shards, batch_size, technique
):
    expected = _engine_answers(
        queries, operator_name, [value for _, value in records]
    )
    service = AggregationService(
        queries,
        get_operator(operator_name),
        num_shards=num_shards,
        technique=technique,
        batch_size=batch_size,
        transport="inline",
    )
    service.submit_many(records)
    result = service.close()
    assert result.answers == expected
    assert result.stats.records_submitted == len(records)
    assert result.stats.records_processed == len(records)
    assert result.stats.dropped_records == 0


@settings(max_examples=25, deadline=None)
@given(
    queries=queries_strategy,
    records=keyed_streams,
    operator_name=st.sampled_from(["sum", "max", "first", "last"]),
    num_shards=st.integers(min_value=1, max_value=4),
    batch_size=st.integers(min_value=1, max_value=16),
)
def test_sharded_per_key_answers_equal_per_key_engines(
    queries, records, operator_name, num_shards, batch_size
):
    service = AggregationService(
        queries,
        get_operator(operator_name),
        num_shards=num_shards,
        mode="per_key",
        batch_size=batch_size,
        transport="inline",
    )
    service.submit_many(records)
    result = service.close()
    assert not result.answers  # global answers only in global mode

    values_by_key = {}
    for key, value in records:
        values_by_key.setdefault(key, []).append(value)
    assert set(result.per_key) <= set(values_by_key)
    for key, values in values_by_key.items():
        expected = _engine_answers(queries, operator_name, values)
        assert result.per_key.get(key, []) == expected
