"""Property-based tests: engine modes agree on random workloads.

The shared SlickDeque plan, the independent per-query pipelines (over
any registry algorithm), and the Cutty pipeline are three independent
execution strategies for the same ACQ semantics — hypothesis drives
random ACQ sets and streams through all of them and requires identical
answers.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.operators.registry import get_operator
from repro.stream.engine import CuttyPipeline, StreamEngine
from repro.stream.sink import CollectSink
from repro.windows.query import Query

queries_strategy = st.lists(
    st.builds(
        Query,
        st.integers(min_value=1, max_value=18),
        st.integers(min_value=1, max_value=6),
    ),
    min_size=1,
    max_size=3,
    unique=True,
)

streams = st.lists(
    st.integers(min_value=-200, max_value=200), min_size=1,
    max_size=120,
)


def _collect(queries, operator_name, stream, mode, algorithm):
    sink = CollectSink()
    engine = StreamEngine(
        queries,
        get_operator(operator_name),
        mode=mode,
        algorithm=algorithm,
        sinks=[sink],
    )
    engine.run(stream)
    return sink.answers


@given(queries=queries_strategy, stream=streams,
       operator_name=st.sampled_from(["sum", "max"]))
@settings(max_examples=50, deadline=None)
def test_shared_equals_independent(queries, stream, operator_name):
    shared = _collect(queries, operator_name, stream, "shared",
                      "slickdeque")
    independent = _collect(queries, operator_name, stream,
                           "independent", "slickdeque")
    assert shared == independent


@given(queries=queries_strategy, stream=streams,
       algorithm=st.sampled_from(["naive", "flatfat", "daba"]))
@settings(max_examples=40, deadline=None)
def test_independent_mode_is_algorithm_agnostic(
    queries, stream, algorithm
):
    baseline = _collect(queries, "sum", stream, "independent",
                        "slickdeque")
    other = _collect(queries, "sum", stream, "independent", algorithm)
    assert baseline == other


@given(
    stream=streams,
    range_size=st.integers(min_value=1, max_value=18),
    slide=st.integers(min_value=1, max_value=6),
)
@settings(max_examples=50, deadline=None)
def test_cutty_agrees_with_shared_plan(stream, range_size, slide):
    query = Query(range_size, slide)
    shared = _collect([query], "max", stream, "shared", "slickdeque")
    cutty = CuttyPipeline(query, get_operator("max")).run(stream)
    assert [(p, a) for p, _, a in shared] == cutty
