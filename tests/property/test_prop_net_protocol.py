"""Property tests: the wire codec over arbitrary payloads.

Three properties the serving layer leans on:

* **round trip** — any encodable value survives
  ``decode(encode(v)) == v``, frames included;
* **prefix safety** — a strict prefix of a frame never decodes (the
  streaming decoder waits for more bytes instead of guessing);
* **corruption containment** — arbitrary corruption of a valid frame
  either raises :class:`~repro.errors.ProtocolError`, waits for more
  bytes, or decodes to *some* value — never an unexpected exception
  type escaping the codec.
"""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ProtocolError
from repro.net.protocol import (
    MAX_TRACE_ID,
    FrameDecoder,
    FrameType,
    decode_value,
    encode_frame,
    encode_value,
    try_decode_frame,
    try_decode_frame_traced,
)

# NaN breaks == comparison; it has its own explicit unit test.
scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(),  # unbounded: exercises the bigint fallback
    st.floats(allow_nan=False),
    st.text(),
    st.binary(),
)

values = st.recursive(
    scalars,
    lambda children: st.one_of(
        st.lists(children, max_size=6),
        st.lists(children, max_size=6).map(tuple),
        st.dictionaries(scalars, children, max_size=6),
    ),
    max_leaves=25,
)

frame_types = st.sampled_from(list(FrameType))


@given(values)
def test_value_round_trip(value):
    assert decode_value(encode_value(value)) == value


@given(frame_types, values)
def test_frame_round_trip(frame_type, payload):
    frame = encode_frame(frame_type, payload)
    decoded = try_decode_frame(frame)
    assert decoded is not None
    got_type, got_payload, consumed = decoded
    assert got_type is frame_type
    assert got_payload == payload
    assert consumed == len(frame)


@given(frame_types, values, st.data())
def test_strict_prefixes_never_decode(frame_type, payload, data):
    frame = encode_frame(frame_type, payload)
    cut = data.draw(st.integers(min_value=0, max_value=len(frame) - 1))
    assert try_decode_frame(frame[:cut]) is None


@given(frame_types, values, st.data())
@settings(max_examples=200)
def test_corruption_is_contained(frame_type, payload, data):
    """Flipping any byte never escapes as a non-ProtocolError crash."""
    frame = bytearray(encode_frame(frame_type, payload))
    index = data.draw(
        st.integers(min_value=0, max_value=len(frame) - 1)
    )
    flip = data.draw(st.integers(min_value=1, max_value=255))
    frame[index] ^= flip
    try:
        decoded = try_decode_frame(bytes(frame))
    except ProtocolError:
        return  # detected: the expected failure mode
    if decoded is None:
        return  # corrupted length field: decoder waits for more bytes
    got_type, got_payload, consumed = decoded
    assert got_type in FrameType
    assert 0 < consumed <= len(frame)


@given(st.binary(max_size=512))
def test_garbage_never_escapes_the_decoder(garbage):
    """Arbitrary bytes either wait, decode, or raise ProtocolError."""
    decoder = FrameDecoder()
    try:
        decoder.feed(garbage)
        for frame_type, _payload in decoder.frames():
            assert frame_type in FrameType
    except ProtocolError:
        pass


@given(frame_types, values, st.integers(min_value=1, max_value=7))
@settings(max_examples=50)
def test_streaming_decode_is_chunking_invariant(
    frame_type, payload, chunk_size
):
    """The decoder yields the same frames however the bytes arrive."""
    stream = encode_frame(frame_type, payload) * 3
    decoder = FrameDecoder()
    seen = []
    for start in range(0, len(stream), chunk_size):
        decoder.feed(stream[start : start + chunk_size])
        seen.extend(decoder.frames())
    assert seen == [(frame_type, payload)] * 3
    assert decoder.pending_bytes == 0


trace_ids = st.one_of(
    st.none(), st.integers(min_value=1, max_value=MAX_TRACE_ID)
)


@given(frame_types, values, trace_ids)
def test_traced_frame_round_trip(frame_type, payload, trace_id):
    """Any trace id (or none) survives the wire unchanged."""
    frame = encode_frame(frame_type, payload, trace_id=trace_id)
    decoded = try_decode_frame_traced(frame)
    assert decoded is not None
    got, consumed = decoded
    assert got.frame_type is frame_type
    assert got.payload == payload
    assert got.trace_id == trace_id
    assert consumed == len(frame)
    # The untraced API sees the same frame, minus the trace.
    assert try_decode_frame(frame) == (frame_type, payload, len(frame))


@given(frame_types, values, trace_ids, st.data())
def test_traced_strict_prefixes_never_decode(
    frame_type, payload, trace_id, data
):
    frame = encode_frame(frame_type, payload, trace_id=trace_id)
    cut = data.draw(st.integers(min_value=0, max_value=len(frame) - 1))
    assert try_decode_frame_traced(frame[:cut]) is None


@given(
    st.lists(
        st.tuples(frame_types, values, trace_ids),
        min_size=1,
        max_size=5,
    ),
    st.integers(min_value=1, max_value=7),
)
@settings(max_examples=50)
def test_mixed_version_streaming_is_chunking_invariant(
    messages, chunk_size
):
    """v1 and v2 frames interleave freely on one byte stream."""
    stream = b"".join(
        encode_frame(frame_type, payload, trace_id=trace_id)
        for frame_type, payload, trace_id in messages
    )
    decoder = FrameDecoder()
    seen = []
    for start in range(0, len(stream), chunk_size):
        decoder.feed(stream[start : start + chunk_size])
        seen.extend(decoder.frames_traced())
    assert [
        (frame.frame_type, frame.payload, frame.trace_id)
        for frame in seen
    ] == messages
    assert decoder.pending_bytes == 0


def test_nan_payload_round_trips_bitwise():
    decoded = decode_value(encode_value(math.nan))
    assert math.isnan(decoded)


@given(st.floats())
def test_every_float_round_trips(value):
    decoded = decode_value(encode_value(value))
    if math.isnan(value):
        assert math.isnan(decoded)
    else:
        assert decoded == value
