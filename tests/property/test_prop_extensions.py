"""Property-based tests for the extension subsystems."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.operators.registry import get_operator
from repro.stream.outoforder import ReorderBuffer
from repro.stream.punctuation import (
    PunctuatedCuttyPipeline,
    Punctuation,
    punctuate,
)
from repro.windows.compatibility import AcqSpec, CompatibleSharedEngine
from repro.windows.query import Query
from repro.windows.timebased import TimeQuery, TimeSlicer

values = st.lists(
    st.integers(min_value=-500, max_value=500), min_size=1, max_size=120
)


@given(
    stream=values,
    range_size=st.integers(min_value=1, max_value=20),
    slide=st.integers(min_value=1, max_value=8),
)
@settings(max_examples=80, deadline=None)
def test_punctuated_cutty_matches_brute_force(stream, range_size, slide):
    query = Query(range_size, slide)
    op = get_operator("max")
    pipeline = PunctuatedCuttyPipeline(query, op)
    got = pipeline.run(punctuate(stream, [query]))
    expected = [
        (t, op.lower(op.fold(stream[max(0, t - range_size):t])))
        for t in range(1, len(stream) + 1)
        if t % slide == 0
    ]
    assert got == expected


@given(stream=values, queries=st.lists(
    st.builds(
        Query,
        st.integers(min_value=1, max_value=16),
        st.integers(min_value=1, max_value=6),
    ),
    min_size=1,
    max_size=3,
))
@settings(max_examples=60, deadline=None)
def test_punctuation_positions_are_window_starts(stream, queries):
    position = 0
    for element in punctuate(stream, queries):
        if isinstance(element, Punctuation):
            assert element.position == position
            assert any(
                (element.position + q.range_size) % q.slide == 0
                for q in queries
            )
        else:
            position += 1


@given(
    items=st.lists(st.integers(min_value=1, max_value=60), min_size=1,
                   max_size=60, unique=True),
    slack=st.integers(min_value=0, max_value=60),
)
@settings(max_examples=80, deadline=None)
def test_reorder_buffer_sorts_within_slack(items, slack):
    """Any permutation whose displacement fits the slack comes out
    sorted; we feed a sorted-by-arrival arbitrary unique set and only
    assert on runs the slack can absorb."""
    buffer = ReorderBuffer(slack=max(slack, len(items)))
    released = list(
        buffer.reorder((position, position) for position in items)
    )
    assert [p for p, _ in released] == sorted(items)


@given(
    timestamps=st.lists(
        st.floats(min_value=0.0, max_value=50.0, allow_nan=False),
        min_size=1,
        max_size=80,
    ),
    slice_seconds=st.sampled_from([0.5, 1.0, 2.0]),
)
@settings(max_examples=80, deadline=None)
def test_time_slicer_partitions_the_stream(timestamps, slice_seconds):
    ordered = sorted(timestamps)
    slicer = TimeSlicer(slice_seconds)
    slices = []
    for timestamp in ordered:
        slices.extend(slicer.feed(timestamp, timestamp))
    slices.extend(slicer.flush())
    # Indices are consecutive from 0; every tuple lands in its slice.
    assert [index for index, _ in slices] == list(range(len(slices)))
    recovered = [t for _, bucket in slices for t in bucket]
    assert recovered == ordered
    for index, bucket in slices:
        for timestamp in bucket:
            assert (
                index * slice_seconds
                <= timestamp
                < (index + 1) * slice_seconds
            )


@given(
    stream=values,
    window=st.integers(min_value=2, max_value=24),
    slide=st.integers(min_value=1, max_value=6),
)
@settings(max_examples=40, deadline=None)
def test_compatible_engine_consistent_across_operators(
    stream, window, slide
):
    """Shared components answer identically to direct evaluation."""
    query = Query(window, slide)
    specs = [
        AcqSpec(query, "sum"),
        AcqSpec(query, "count"),
        AcqSpec(query, "mean"),
    ]
    engine = CompatibleSharedEngine(specs)
    answers = {}
    for position, spec, answer in engine.run(stream):
        answers.setdefault(position, {})[spec.operator_name] = answer
    for position, by_op in answers.items():
        window_values = stream[max(0, position - window):position]
        assert by_op["sum"] == sum(window_values)
        assert by_op["count"] == len(window_values)
        assert by_op["mean"] == sum(window_values) / len(window_values)


@given(
    range_seconds=st.sampled_from([1.0, 2.0, 4.0, 6.0]),
    slide_seconds=st.sampled_from([1.0, 2.0]),
)
@settings(max_examples=20, deadline=None)
def test_time_query_count_reduction_round_trips(
    range_seconds, slide_seconds
):
    query = TimeQuery(range_seconds, slide_seconds)
    count = query.to_count_query(slice_seconds=1.0)
    assert count.range_size == int(range_seconds)
    assert count.slide == int(slide_seconds)
