"""Property-based tests: shared-plan invariants over random ACQ sets."""

from __future__ import annotations

import math
from functools import reduce

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.multiquery import SharedSlickDeque
from repro.operators.registry import get_operator
from repro.windows.plan import build_shared_plan
from repro.windows.query import Query
from repro.windows.slicing import edges_for, partial_lengths

query_sets = st.lists(
    st.builds(
        Query,
        st.integers(min_value=1, max_value=24),
        st.integers(min_value=1, max_value=8),
    ),
    min_size=1,
    max_size=4,
)

techniques = st.sampled_from(["panes", "pairs"])


@given(queries=query_sets, technique=techniques)
@settings(max_examples=120, deadline=None)
def test_partial_lengths_tile_the_cycle(queries, technique):
    cycle, edges = edges_for(technique, queries)
    lengths = partial_lengths(edges, cycle)
    assert sum(lengths) == cycle
    assert all(length >= 1 for length in lengths)
    assert edges == sorted(set(edges))
    assert 1 <= edges[0] and edges[-1] <= cycle


@given(queries=query_sets, technique=techniques)
@settings(max_examples=120, deadline=None)
def test_cycle_is_lcm_of_slides(queries, technique):
    cycle, _ = edges_for(technique, queries)
    assert cycle == reduce(math.lcm, (q.slide for q in queries), 1)


@given(queries=query_sets, technique=techniques)
@settings(max_examples=120, deadline=None)
def test_plan_schedules_every_query_exactly_per_slide(queries, technique):
    plan = build_shared_plan(queries, technique)
    for query in plan.queries:
        scheduled_offsets = [
            step.end_offset
            for step in plan.steps
            for sq in step.answers
            if sq.query == query
        ]
        expected = [
            offset
            for offset in range(1, plan.cycle_length + 1)
            if offset % query.slide == 0
        ]
        assert scheduled_offsets == expected


@given(queries=query_sets, technique=techniques)
@settings(max_examples=120, deadline=None)
def test_lookbacks_cover_exactly_the_range(queries, technique):
    """The partials a lookback spans sum to exactly the query range
    (steady state), for every scheduled answer."""
    plan = build_shared_plan(queries, technique)
    lengths = {
        step.end_offset: step.length for step in plan.steps
    }
    ordered_offsets = [step.end_offset for step in plan.steps]
    for index, step in enumerate(plan.steps):
        for sq in step.answers:
            covered = 0
            cursor = index
            for _ in range(sq.lookback):
                covered += lengths[ordered_offsets[cursor]]
                cursor = (cursor - 1) % len(ordered_offsets)
            assert covered == sq.query.range_size


@given(queries=query_sets, technique=techniques)
@settings(max_examples=60, deadline=None)
def test_shared_execution_matches_brute_force(queries, technique):
    stream = [((i * 37) % 101) - 50 for i in range(120)]
    op = get_operator("max")
    engine = SharedSlickDeque(queries, op, technique)
    got = [(p, q, a) for p, q, a in engine.run(stream)]
    expected = []
    plan_order = sorted(
        set(queries), key=lambda q: (-q.range_size, q.slide)
    )
    for t in range(1, len(stream) + 1):
        for q in plan_order:
            if q.reports_at(t):
                window = stream[max(0, t - q.range_size):t]
                expected.append((t, q, op.lower(op.fold(window))))
    assert got == expected
