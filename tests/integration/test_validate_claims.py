"""Integration: the claims validator reproduces every paper claim.

This is the single highest-level test in the repository: it runs the
``repro-experiments validate`` machinery (quick scale) and requires
every checkable claim of the paper to PASS on this machine.
"""

from __future__ import annotations

import pytest

from repro.experiments import validate


@pytest.fixture(scope="module")
def claims():
    return validate.check_all(quick=True)


def test_every_claim_has_evidence(claims):
    for claim in claims:
        assert claim.evidence, claim.identifier
        assert claim.statement


def test_complexity_claims_pass(claims):
    by_id = {c.identifier: c for c in claims}
    for identifier in ("C1", "C2", "C3", "C4", "C5", "C6"):
        assert by_id[identifier].passed, by_id[identifier].evidence


def test_space_claims_pass(claims):
    by_id = {c.identifier: c for c in claims}
    for identifier in ("C7", "C8"):
        assert by_id[identifier].passed, by_id[identifier].evidence


def test_capability_claim_passes(claims):
    by_id = {c.identifier: c for c in claims}
    assert by_id["C13"].passed


def test_multi_query_op_claim_passes(claims):
    by_id = {c.identifier: c for c in claims}
    assert by_id["C12"].passed, by_id["C12"].evidence


@pytest.mark.parametrize("identifier", ["C9", "C10", "C11"])
def test_wall_clock_claims_pass(claims, identifier):
    """Throughput/latency ordering claims.

    These depend on the machine's scheduler; they hold comfortably on
    an idle box (SlickDeque's margin is >40 %) and are the same
    checks EXPERIMENTS.md records.  A claim that loses its first
    measurement to transient contention gets one clean re-measure
    before the test judges it.
    """
    by_id = {c.identifier: c for c in claims}
    claim = by_id[identifier]
    if not claim.passed:
        fresh = {
            c.identifier: c
            for c in validate.check_all(quick=True)
        }[identifier]
        assert fresh.passed, fresh.evidence
    else:
        assert claim.passed, claim.evidence


def test_render_lists_all(claims):
    text = validate.render(claims)
    assert f"{sum(c.passed for c in claims)}/{len(claims)}" in text
    for claim in claims:
        assert claim.identifier in text
