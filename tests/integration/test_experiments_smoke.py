"""Integration: the experiment harness runs end-to-end (quick scale).

Each figure/table module executes on a seconds-scale configuration and
its qualitative shape claims hold — the fast companion to the full
``repro-experiments all`` run recorded in EXPERIMENTS.md.
"""

from __future__ import annotations

import pytest

from repro.experiments import exp1_throughput, exp2_multiquery
from repro.experiments import exp3_latency, exp4_memory
from repro.experiments import table1_complexity
from repro.experiments.config import ExperimentConfig


@pytest.fixture(scope="module")
def config():
    return ExperimentConfig.quick()


def test_table1_measured_vs_theory():
    result = table1_complexity.run(window=32, slides=1024)
    rendered = result.table().render()
    assert "slickdeque" in rendered
    # The load-bearing cells:
    assert result.single["sum"]["slickdeque"].amortized == 2.0
    assert result.single["sum"]["naive"].amortized == 31.0
    assert result.multi["sum"]["slickdeque"].amortized == 64.0


def test_exp1_shapes(config):
    result = exp1_throughput.run("sum", config)
    # Every algorithm produced a rate at every window.
    for name, by_window in result.series.items():
        assert set(by_window) == set(config.windows), name
        assert all(v and v > 0 for v in by_window.values())
    # SlickDeque (Inv) leads at the largest window.
    largest = max(config.windows)
    slick = result.series["slickdeque"][largest]
    assert all(
        slick >= rate
        for name, series in result.series.items()
        for w, rate in series.items()
        if name != "slickdeque" and w == largest
    )


def test_exp2_capabilities(config):
    result = exp2_multiquery.run("max", config)
    assert "twostacks" not in result.series
    assert "daba" not in result.series
    largest = max(config.multi_windows)
    slick = result.series["slickdeque"][largest]
    for name, series in result.series.items():
        if name != "slickdeque" and series.get(largest) is not None:
            assert slick > series[largest], name


def test_exp2_naive_cap_respected():
    config = ExperimentConfig(
        multi_windows=(2, 8),
        multi_stream_length=100,
        naive_multi_cap=4,
    )
    result = exp2_multiquery.run("sum", config,
                                 algorithms=["naive", "slickdeque"])
    assert result.series["naive"][2] is not None
    assert result.series["naive"][8] is None


def test_exp3_produces_all_categories(config):
    result = exp3_latency.run(config)
    for operator_name in ("sum", "max"):
        summaries = result.summaries[operator_name]
        assert set(summaries) == {
            "naive", "flatfat", "bint", "flatfit", "twostacks", "daba",
            "slickdeque",
        }
        for summary in summaries.values():
            assert summary.minimum <= summary.median <= summary.maximum
    table = result.table("sum").render()
    assert "p25" in table


def test_exp4_grouping(config):
    result = exp4_memory.run(config)
    words = result.words["sum"]
    for window in config.memory_sizes:
        if window < 4:
            continue
        naive = words["naive"][window]
        assert words["slickdeque"][window] <= naive + 1
        assert words["flatfat"][window] >= 2 * naive
        assert words["twostacks"][window] == 2 * naive
    # Non-inv SlickDeque beats Naive at large windows on real data —
    # quick-config windows are too small for the deque advantage, so
    # the gain check runs directly at window 1024 (Naive costs exactly
    # its window, no stream needed).
    from repro.datasets.debs12 import debs12_array
    from repro.metrics.memory import peak_memory_words
    from repro.registry import get_algorithm
    from repro.operators.registry import get_operator

    window = 1024
    aggregator = get_algorithm("slickdeque").single(
        get_operator("max"), window
    )
    slick = peak_memory_words(
        aggregator, debs12_array(4 * window, seed=7)
    )
    assert slick < window / 2
