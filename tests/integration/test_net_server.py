"""Integration: the network serving layer end to end on localhost.

Acceptance criteria of the serving-layer issue:

* over-the-wire answers are identical to an in-process
  :class:`~repro.stream.engine.StreamEngine` run over the same
  records, including under pipelined SUBMIT_BATCH;
* a saturating client observes shed/RETRY — not a crash and not an
  unbounded queue — when the admission budget is exceeded.

Every server runs on an ephemeral localhost port (``port=0``) via
:class:`~repro.net.server.ServerThread`, with the inline service
transport for determinism.
"""

from __future__ import annotations

import asyncio
import socket
import threading
import time

import pytest

from repro import AggregationService, Query, get_operator
from repro.errors import (
    ClientTimeoutError,
    ServerOverloadedError,
    ServiceError,
)
from repro.net.client import AggregationClient, AsyncAggregationClient
from repro.net.protocol import FrameType, encode_frame
from repro.net.server import AggregationServer, ServerThread
from repro.service.gateway import ServiceGateway
from repro.stream.engine import StreamEngine
from repro.stream.sink import CollectSink

QUERIES = [Query(16, 8), Query(12, 4)]
KEYS = [f"sensor-{i}" for i in range(7)]


def keyed_records(count: int):
    """Deterministic keyed integer records (ints merge exactly)."""
    return [
        (KEYS[i % len(KEYS)], (i * 37 + 5) % 211 - 105)
        for i in range(count)
    ]


def reference_answers(records):
    """Single-process StreamEngine answers for the same values."""
    sink = CollectSink()
    StreamEngine(QUERIES, get_operator("sum"), sinks=[sink]).run(
        value for _, value in records
    )
    return sink.answers


def make_service(**kwargs) -> AggregationService:
    kwargs.setdefault("num_shards", 2)
    kwargs.setdefault("transport", "inline")
    kwargs.setdefault("batch_size", 16)
    return AggregationService(QUERIES, get_operator("sum"), **kwargs)


class SlowGateway(ServiceGateway):
    """Gateway with an artificial per-batch delay (saturation tests)."""

    def __init__(self, service, delay: float):
        super().__init__(service)
        self._delay = delay

    def submit_many(self, records, trace_id=None):
        """Sleep, then delegate — simulates a busy backend."""
        time.sleep(self._delay)
        return super().submit_many(records, trace_id)


@pytest.mark.timeout(120)
class TestOverTheWireEquivalence:
    """Socket answers == in-process StreamEngine answers."""

    def test_pipelined_submit_batch_matches_stream_engine(self):
        records = keyed_records(400)
        reference = reference_answers(records)
        chunks = [
            records[start : start + 25]
            for start in range(0, len(records), 25)
        ]
        with ServerThread(
            AggregationServer(make_service())
        ) as thread:
            with AggregationClient(
                "127.0.0.1", thread.port
            ) as client:
                accepted = client.submit_batches(chunks)
                assert accepted == [len(chunk) for chunk in chunks]
                polled = client.poll()
                answers, final = client.drain()
        assert polled == reference[: len(polled)]
        assert answers == reference
        assert final["stats"]["records_submitted"] == len(records)
        assert final["stats"]["dead_letters"] == 0

    def test_single_submits_match_stream_engine(self):
        records = keyed_records(60)
        reference = reference_answers(records)
        with ServerThread(
            AggregationServer(make_service(batch_size=4))
        ) as thread:
            with AggregationClient(
                "127.0.0.1", thread.port
            ) as client:
                for key, value in records:
                    assert client.submit(key, value) == 1
                answers, _ = client.drain()
        assert answers == reference

    def test_async_client_matches_stream_engine(self):
        records = keyed_records(200)
        reference = reference_answers(records)

        async def drive(port):
            client = await AsyncAggregationClient.connect(
                "127.0.0.1", port
            )
            async with client:
                for start in range(0, len(records), 40):
                    accepted = await client.submit_batch(
                        records[start : start + 40]
                    )
                    assert accepted == 40
                stats = await client.stats()
                answers, _ = await client.drain()
            return answers, stats

        with ServerThread(
            AggregationServer(make_service())
        ) as thread:
            answers, stats = asyncio.run(drive(thread.port))
        assert answers == reference
        assert stats["server"]["accepted_records"] == len(records)

    def test_two_connections_share_one_service(self):
        records = keyed_records(120)
        reference = reference_answers(records)
        half = len(records) // 2
        with ServerThread(
            AggregationServer(make_service())
        ) as thread:
            first = AggregationClient("127.0.0.1", thread.port)
            second = AggregationClient("127.0.0.1", thread.port)
            try:
                # Interleave strictly: submission order defines the
                # global stream, whichever socket carries it.
                first.submit_batch(records[:half])
                second.submit_batch(records[half:])
                stats = second.stats()
                assert (
                    stats["server"]["accepted_records"]
                    == len(records)
                )
                assert stats["server"]["connections_total"] == 2
                answers, _ = second.drain()
            finally:
                first.close()
                second.close()
        assert answers == reference


@pytest.mark.timeout(120)
class TestAdmissionControl:
    """Shed/RETRY under a tiny budget; block policy stays lossless."""

    def test_saturating_client_observes_retry_not_a_crash(self):
        server = AggregationServer(
            SlowGateway(make_service(), delay=0.01),
            max_inflight_records=32,
            admission_policy="shed",
        )
        batches = [
            [(KEYS[i % len(KEYS)], i)] * 8 for i in range(40)
        ]
        with ServerThread(server) as thread:
            with AggregationClient(
                "127.0.0.1", thread.port, max_retries=0
            ) as client:
                accepted = client.submit_batches(
                    batches, retry_shed=False
                )
                stats = client.stats()
        shed_batches = accepted.count(0)
        accepted_records = sum(accepted)
        assert shed_batches > 0, "a tiny budget must shed"
        assert accepted_records > 0, "some batches must land"
        counters = stats["server"]
        assert counters["shed_requests"] == shed_batches
        assert counters["accepted_records"] == accepted_records
        assert (
            counters["shed_records"] + counters["accepted_records"]
            == sum(len(batch) for batch in batches)
        )
        # The queue is bounded: nothing may linger beyond the budget.
        assert counters["inflight_records"] <= 32

    def test_retries_eventually_land_or_raise_overloaded(self):
        server = AggregationServer(
            SlowGateway(make_service(), delay=0.005),
            max_inflight_records=8,
            admission_policy="shed",
            retry_after=0.01,
        )
        with ServerThread(server) as thread:
            with AggregationClient(
                "127.0.0.1",
                thread.port,
                max_retries=20,
                backoff_base=0.01,
            ) as client:
                batches = [[("k", i)] * 8 for i in range(20)]
                accepted = client.submit_batches(batches)
                # With retries enabled every batch lands eventually.
                assert accepted == [8] * 20

    def test_exhausted_retries_raise_server_overloaded(self):
        server = AggregationServer(
            SlowGateway(make_service(), delay=0.5),
            max_inflight_records=8,
            admission_policy="shed",
            retry_after=0.001,
        )
        with ServerThread(server) as thread:
            saturator = AggregationClient("127.0.0.1", thread.port)
            victim = AggregationClient(
                "127.0.0.1",
                thread.port,
                max_retries=2,
                backoff_base=0.001,
                backoff_max=0.002,
            )
            try:
                # Occupy the whole budget for ~0.5 s without reading
                # the reply; the victim's fast retries all land inside
                # that window and must shed out.
                saturator.send_frame(
                    FrameType.SUBMIT_BATCH, [("k", 1)] * 8
                )
                # Wait for the server to actually admit the burst (a
                # fixed sleep races the event loop on loaded runners):
                # the in-flight budget is observable server state.
                deadline = time.monotonic() + 10.0
                while server._budget.records < 8:
                    assert time.monotonic() < deadline, (
                        "server never admitted the saturating burst"
                    )
                    time.sleep(0.001)
                with pytest.raises(ServerOverloadedError):
                    victim.submit_batch([("k", 999)] * 8)
                assert saturator.read_reply()[1]["accepted"] == 8
            finally:
                victim.close()
                saturator.close()

    def test_block_policy_is_lossless(self):
        records = keyed_records(160)
        reference = reference_answers(records)
        server = AggregationServer(
            SlowGateway(make_service(), delay=0.002),
            max_inflight_records=16,
            admission_policy="block",
        )
        chunks = [
            records[start : start + 8]
            for start in range(0, len(records), 8)
        ]
        with ServerThread(server) as thread:
            with AggregationClient(
                "127.0.0.1", thread.port
            ) as client:
                accepted = client.submit_batches(chunks)
                assert accepted == [8] * len(chunks)
                stats = client.stats()
                assert stats["server"]["shed_requests"] == 0
                answers, _ = client.drain()
        assert answers == reference


@pytest.mark.timeout(120)
class TestProtocolAndLifecycle:
    """Malformed input, draining, stats, and client timeouts."""

    def test_malformed_frame_gets_error_reply_and_disconnect(self):
        with ServerThread(
            AggregationServer(make_service())
        ) as thread:
            raw = socket.create_connection(
                ("127.0.0.1", thread.port), timeout=10
            )
            try:
                raw.sendall(b"XXXXXXXXXXXX")
                # The server answers ERROR, then closes (EOF).
                received = b""
                while True:
                    chunk = raw.recv(65536)
                    if not chunk:
                        break
                    received += chunk
                assert received, "expected an ERROR reply before EOF"
            finally:
                raw.close()

    def test_bad_payload_shape_is_an_error_not_a_crash(self):
        with ServerThread(
            AggregationServer(make_service())
        ) as thread:
            with AggregationClient(
                "127.0.0.1", thread.port
            ) as client:
                with pytest.raises(ServiceError, match="pair"):
                    client._request(
                        FrameType.SUBMIT, "not-a-pair"
                    )
                # The connection survives a semantic error.
                assert client.submit("k", 1) == 1

    def test_submit_after_drain_is_rejected(self):
        with ServerThread(
            AggregationServer(make_service())
        ) as thread:
            with AggregationClient(
                "127.0.0.1", thread.port
            ) as client:
                client.submit_batch(keyed_records(20))
                client.drain()
                with pytest.raises(ServiceError, match="draining"):
                    client.submit("k", 1)
                # Drain is idempotent over the cached result.
                answers, _ = client.drain()
                assert answers

    def test_stats_expose_latency_and_throughput(self):
        with ServerThread(
            AggregationServer(make_service())
        ) as thread:
            with AggregationClient(
                "127.0.0.1", thread.port
            ) as client:
                client.submit_batches(
                    [keyed_records(30)[i : i + 10] for i in (0, 10, 20)]
                )
                stats = client.stats()
        server_stats = stats["server"]
        assert server_stats["accepted_records"] == 30
        assert server_stats["accepted_batches"] == 3
        assert server_stats["throughput_rps"] > 0
        latency = server_stats["submit_latency"]
        assert latency is not None and latency["count"] == 3
        assert stats["service"]["records_submitted"] == 30
        assert stats["service"]["dead_letters"] == 0

    def test_request_timeout_raises_client_timeout_error(self):
        """A server that never replies trips the request timeout."""
        mute = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        mute.bind(("127.0.0.1", 0))
        mute.listen(1)
        port = mute.getsockname()[1]
        accepted = []

        def accept_and_hold():
            conn, _ = mute.accept()
            accepted.append(conn)  # hold open, never reply

        holder = threading.Thread(target=accept_and_hold, daemon=True)
        holder.start()
        try:
            client = AggregationClient(
                "127.0.0.1", port, request_timeout=0.2
            )
            with pytest.raises(ClientTimeoutError):
                client._request(FrameType.POLL, None)
        finally:
            for conn in accepted:
                conn.close()
            mute.close()

    def test_async_client_timeout(self):
        async def scenario():
            server_sock = socket.socket(
                socket.AF_INET, socket.SOCK_STREAM
            )
            server_sock.bind(("127.0.0.1", 0))
            server_sock.listen(1)
            port = server_sock.getsockname()[1]
            try:
                client = await AsyncAggregationClient.connect(
                    "127.0.0.1", port, request_timeout=0.2
                )
                with pytest.raises(ClientTimeoutError):
                    await client._request(FrameType.POLL, None)
            finally:
                server_sock.close()

        asyncio.run(scenario())
