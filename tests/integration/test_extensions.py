"""Integration: the extension subsystems composed end-to-end."""

from __future__ import annotations

import pytest

from repro.datasets.debs12 import debs12_events
from repro.experiments import ablations
from repro.experiments.cli import main as cli_main
from repro.operators.registry import get_operator
from repro.windows.compatibility import AcqSpec, CompatibleSharedEngine
from repro.windows.query import Query
from repro.windows.timebased import TimeQuery, TimeWindowEngine


def test_time_engine_over_debs12_events():
    """Time windows over the 100 Hz sensor stream: a 1 s window holds
    exactly 100 samples, so count and time answers coincide."""
    events = list(debs12_events(1000, seed=7, include_states=False))
    stream = [(e.timestamp, e.energy[0]) for e in events]
    engine = TimeWindowEngine(
        [TimeQuery(1.0, 0.5, name="peak1s")], get_operator("max")
    )
    answers = list(engine.run(stream))
    assert len(answers) >= 19  # 10 s of stream, one answer per 0.5 s
    values = [e.energy[0] for e in events]
    for end_time, _, answer in answers:
        # Events are sampled at exact 10 ms ticks starting at 0.0, so
        # the window [end−1, end) covers samples ⌈100·(end−1)⌉ ... .
        end_index = round(end_time * 100)
        start_index = max(0, end_index - 100)
        expected = max(values[start_index:end_index])
        assert answer == expected


def test_time_engine_equivalent_to_count_engine_on_regular_stream():
    """On a perfectly regular stream, time windows == count windows."""
    from repro.core.multiquery import SharedSlickDeque

    values = [float((i * 31) % 97) for i in range(400)]
    regular = [(i * 0.01, v) for i, v in enumerate(values)]
    time_engine = TimeWindowEngine(
        [TimeQuery(0.5, 0.25)], get_operator("sum"), resolution=0.01
    )
    time_answers = [
        a for t, _, a in time_engine.run(regular) if t <= 4.0
    ]
    count_engine = SharedSlickDeque(
        [Query(50, 25)], get_operator("sum")
    )
    count_answers = [a for _, _, a in count_engine.run(values[:400])]
    assert time_answers == pytest.approx(count_answers[: len(time_answers)])


def test_compatible_engine_on_debs12():
    events = list(debs12_events(600, seed=8, include_states=False))
    values = [e.energy[1] for e in events]
    specs = [
        AcqSpec(Query(100, 50), "mean"),
        AcqSpec(Query(100, 50), "stddev"),
        AcqSpec(Query(200, 100), "sum"),
    ]
    engine = CompatibleSharedEngine(specs)
    # mean+stddev+sum decompose to sum, count, sum_of_squares: 3.
    assert engine.plan.shared_component_count == 3
    answers = list(engine.run(values))
    assert len(answers) == 12 + 12 + 6
    import statistics

    for position, spec, answer in answers:
        window = values[max(0, position - spec.query.range_size):position]
        if spec.operator_name == "mean":
            assert answer == pytest.approx(statistics.mean(window))
        elif spec.operator_name == "stddev":
            assert answer == pytest.approx(statistics.pstdev(window))
        else:
            assert answer == pytest.approx(sum(window))


def test_ablation_studies_produce_expected_shapes():
    chunk_table = ablations.chunk_size_study(window=256)
    rendered = chunk_table.render()
    assert "optimum k=√n=16" in rendered
    # The sqrt-sized chunk row must beat the extreme rows.
    rows = {int(r[0]): float(r[1].replace(",", ""))
            for r in chunk_table.rows}
    assert rows[16] < rows[1]
    assert rows[16] < rows[256]

    slicing_table = ablations.slicing_study()
    by_technique = {row[0]: row for row in slicing_table.rows}
    assert int(by_technique["pairs"][2]) < int(
        by_technique["panes"][2]
    )
    assert int(by_technique["cutty"][2]) <= int(
        by_technique["pairs"][2]
    )
    assert int(by_technique["cutty"][3]) > 0  # punctuations cost

    adversarial_table = ablations.adversarial_study(window=64)
    by_shape = {row[0]: row for row in adversarial_table.rows}
    assert int(by_shape["deque-filler"][2]) >= 63  # worst slide = n-1
    assert int(by_shape["ascending"][3]) == 1
    assert int(by_shape["descending"][3]) == 64


def test_cli_out_writes_report(tmp_path):
    target = tmp_path / "report.txt"
    assert cli_main(
        ["table1", "--window", "8", "--out", str(target)]
    ) == 0
    content = target.read_text()
    assert "Table 1" in content
    assert "slickdeque" in content
