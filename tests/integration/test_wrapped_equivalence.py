"""Integration: wrap-faithful Algorithm 2 ≡ sequence-number variant.

DESIGN.md commits to demonstrating that replacing the paper's modular
``currPos`` arithmetic with unbounded sequence numbers changes nothing
observable; this is that demonstration.
"""

from __future__ import annotations

import pytest

from repro.core.slickdeque_noninv import SlickDequeNonInvMulti
from repro.core.slickdeque_noninv_wrapped import (
    WrappedSlickDequeNonInvMulti,
)
from repro.datasets.adversarial import deque_filler
from repro.operators.registry import get_operator
from tests.conftest import int_stream


@pytest.mark.parametrize("window", [1, 2, 3, 5, 8, 16, 33])
@pytest.mark.parametrize("operator_name", ["max", "min"])
def test_equivalence_on_random_streams(window, operator_name):
    stream = int_stream(600, seed=window * 7 + 1)
    ranges = list(range(1, window + 1))
    fast = SlickDequeNonInvMulti(
        get_operator(operator_name), ranges
    ).run(stream)
    wrapped = WrappedSlickDequeNonInvMulti(
        get_operator(operator_name), ranges
    ).run(stream)
    assert fast == wrapped


def test_equivalence_on_adversarial_stream():
    ranges = [1, 4, 16]
    stream = list(deque_filler(16, cycles=5))
    fast = SlickDequeNonInvMulti(get_operator("max"), ranges).run(stream)
    wrapped = WrappedSlickDequeNonInvMulti(
        get_operator("max"), ranges
    ).run(stream)
    assert fast == wrapped


def test_equivalence_across_many_window_wraps():
    """The boundary-crossing Answer Loop 2 runs many times here."""
    stream = int_stream(1000, seed=55)
    ranges = [2, 5, 7]
    fast = SlickDequeNonInvMulti(get_operator("max"), ranges).run(stream)
    wrapped = WrappedSlickDequeNonInvMulti(
        get_operator("max"), ranges
    ).run(stream)
    assert fast == wrapped
