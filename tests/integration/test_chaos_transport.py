"""Chaos suite for the shared-memory data plane.

The shm transport's failure semantics are the point of the design:
every frame is CRC-sealed, rings are torn down wholesale on worker
death, and checkpoint + retained-batch replay reconstructs state —
so a torn write, a duplicated (stale) frame, or a SIGKILL while the
ring is full must all end with answers byte-identical to a fault-free
run.  These tests drive each of those faults against real worker
processes with the shm plane active.

Marked ``chaos``: spawns and kills real processes, so CI runs it in
the dedicated ``pytest -m chaos`` job.
"""

from __future__ import annotations

import os
import signal
import time

import pytest

from repro.operators.registry import get_operator
from repro.service import AggregationService, FaultInjector, poison
from repro.service.partition import shard_of
from repro.service.transport import shm_supported
from repro.stream.engine import StreamEngine
from repro.stream.sink import CollectSink
from repro.windows.query import Query

pytestmark = [
    pytest.mark.chaos,
    pytest.mark.timeout(120),
    pytest.mark.skipif(
        not shm_supported(),
        reason="multiprocessing.shared_memory or fork unavailable",
    ),
]

QUERIES = (Query(12, 4), Query(8, 2))
NUM_SHARDS = 2


def _records(count):
    return [
        (f"sensor-{i % 11}", (i * 37 + 5) % 203 - 101)
        for i in range(count)
    ]


def _expected_global(records):
    sink = CollectSink()
    StreamEngine(QUERIES, get_operator("sum"), sinks=[sink]).run(
        value for _, value in records
    )
    return sink.answers


def _expected_per_key(records):
    values_by_key = {}
    for key, value in records:
        values_by_key.setdefault(key, []).append(value)
    expected = {}
    for key, values in values_by_key.items():
        sink = CollectSink()
        StreamEngine(QUERIES, get_operator("sum"), sinks=[sink]).run(
            values
        )
        if sink.answers:
            expected[key] = sink.answers
    return expected


def _service(injector=None, **kwargs):
    kwargs.setdefault("num_shards", NUM_SHARDS)
    kwargs.setdefault("batch_size", 10)
    kwargs.setdefault("checkpoint_interval", 2)
    kwargs.setdefault("restart_backoff", 0.0)
    kwargs.setdefault("heartbeat_interval", 0.1)
    return AggregationService(
        QUERIES,
        get_operator("sum"),
        transport="process",
        data_plane="shm",
        injector=injector,
        **kwargs,
    )


def _run(service, records):
    try:
        service.submit_many(records)
        return service.close(timeout=60.0)
    except BaseException:
        service.abort()
        raise


def test_torn_frame_recovers_with_exact_answers():
    """A CRC-corrupted data frame kills and respawns the worker."""
    records = _records(300)
    injector = FaultInjector(seed=3).tear_frame(0, nth=3)
    result = _run(_service(injector), records)
    assert result.answers == _expected_global(records)
    assert result.stats.records_processed == len(records)
    assert injector.fired("torn-frame"), injector.events
    assert result.stats.shards[0].restores >= 1
    assert not result.stats.failed_shards
    assert result.stats.dead_letters == 0


def test_stale_duplicate_frame_is_absorbed_idempotently():
    """A replayed (already-acked) frame must not double-count records."""
    records = _records(300)
    injector = FaultInjector(seed=4).stale_frame(0, nth=2)
    result = _run(_service(injector), records)
    assert result.answers == _expected_global(records)
    assert result.stats.records_processed == len(records)
    assert injector.fired("stale-frame"), injector.events
    # Idempotent absorption needs no recovery at all.
    assert result.stats.shards[0].restores == 0


def test_sigkill_while_ring_full_replays_exactly():
    """Kill a slow worker while the producer is blocked on ring space.

    A tiny ring plus a throttled worker keeps the data ring saturated,
    so the SIGKILL lands with frames in flight on shared memory — the
    torn-ring teardown plus checkpoint/replay path must reconstruct
    every batch without loss or duplication.
    """
    records = _records(280)
    injector = FaultInjector(seed=7).kill_worker(0, after_seq=4)
    service = _service(
        injector,
        ring_capacity=1024,
        queue_capacity=16,
        shard_delay_seconds=0.01,
    )
    result = _run(service, records)
    assert result.answers == _expected_global(records)
    assert result.stats.records_processed == len(records)
    assert injector.fired("kill"), injector.events
    assert result.stats.shards[0].restores >= 1
    # The ring actually filled: the producer measurably waited.
    assert result.stats.transport["ring_wait_seconds"] > 0.0
    assert not result.stats.failed_shards


def test_direct_sigkill_restores_from_checkpoint():
    """Checkpoint + retained-batch replay works over fresh rings."""
    records = _records(300)
    service = _service(num_shards=1)
    try:
        service.submit_many(records[:65])
        deadline = time.monotonic() + 10.0
        while service._transport.handles[0].snapshot_seq < 4:
            service.poll()
            if time.monotonic() > deadline:
                raise AssertionError("shard never checkpointed")
            time.sleep(0.01)
        victim = service.shard_pids()[0]
        os.kill(victim, signal.SIGKILL)
        service.submit_many(records[65:])
        result = service.close(timeout=60.0)
    except BaseException:
        service.abort()
        raise
    assert result.answers == _expected_global(records)
    assert result.stats.shards[0].restores == 1
    assert not result.stats.failed_shards


def test_poison_record_takes_pickle_fallback_and_quarantines():
    """A non-numeric poison value forces the pickled-frame fallback.

    The batch containing the poison cannot pass the columnar
    capability check, so it must ship as a CRC-protected pickled
    frame; the worker then quarantines the record and degrades only
    its key, while every clean key stays byte-identical.
    """
    records = _records(300)
    poison_key = records[150][0]
    poisoned = list(records)
    poisoned.insert(150, (poison_key, poison("transport-poison")))
    service = _service(mode="per_key", poison_policy="quarantine")
    try:
        service.submit_many(poisoned)
        stats = service.transport_stats()
        result = service.close(timeout=60.0)
    except BaseException:
        service.abort()
        raise
    assert stats["data_plane"] == "shm"
    assert stats["frames_pickled"] >= 1
    assert stats["frames_columnar"] >= 1
    expected = _expected_per_key(records)
    for key, answers in expected.items():
        if key == poison_key:
            produced = result.per_key.get(key, [])
            assert produced == answers[: len(produced)]
        else:
            assert result.per_key.get(key, []) == answers
    assert set(result.stats.degraded_keys) == {poison_key}
    assert any(
        "transport-poison" in letter.error
        for letter in result.dead_letters
    )


def test_torn_frame_on_every_shard_simultaneously():
    """Concurrent torn frames on all shards recover independently."""
    records = _records(260)
    injector = FaultInjector(seed=11)
    for shard_id in range(NUM_SHARDS):
        injector.tear_frame(shard_id, nth=2)
    result = _run(_service(injector), records)
    assert result.answers == _expected_global(records)
    assert len(injector.fired("torn-frame")) == NUM_SHARDS
    for shard in result.stats.shards:
        assert shard.restores >= 1
    assert not result.stats.failed_shards
