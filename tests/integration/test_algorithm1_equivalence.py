"""Integration: literal Algorithm 1 ≡ the production engines."""

from __future__ import annotations

import pytest

from repro.core.algorithm1 import PaperAlgorithm1
from repro.core.multiquery import SharedSlickDeque
from repro.core.slickdeque_inv import SlickDequeInvMulti
from repro.errors import PlanError
from repro.operators.registry import get_operator
from repro.windows.query import Query
from tests.conftest import int_stream


@pytest.mark.parametrize("operator_name", ["sum", "mean", "count"])
@pytest.mark.parametrize(
    "queries",
    [
        [Query(3, 1), Query(5, 1)],          # paper Example 2
        [Query(6, 2), Query(8, 4)],          # paper Example 1
        [Query(7, 3), Query(5, 2)],          # uneven fragments
        [Query(1, 1)],
    ],
    ids=["example2", "example1", "fragments", "degenerate"],
)
def test_matches_shared_engine(operator_name, queries):
    stream = int_stream(240, seed=61)
    transcription = list(
        PaperAlgorithm1(queries, get_operator(operator_name)).run(stream)
    )
    production = list(
        SharedSlickDeque(queries, get_operator(operator_name)).run(stream)
    )
    assert transcription == production


def test_matches_multi_aggregator_on_slide_one():
    """With slide 1, Algorithm 1 is the max-multi-query environment."""
    stream = int_stream(200, seed=62)
    ranges = [3, 5, 9]
    queries = [Query(r, 1) for r in ranges]
    transcription = PaperAlgorithm1(queries, get_operator("sum"))
    multi = SlickDequeInvMulti(get_operator("sum"), ranges)
    per_position = {}
    for position, query, answer in transcription.run(stream):
        per_position.setdefault(position, {})[
            query.range_size
        ] = answer
    expected = multi.run(stream)
    for position, answers in per_position.items():
        assert answers == expected[position - 1]


def test_shares_answers_across_same_range_queries():
    queries = [Query(12, 3), Query(12, 4)]
    algorithm = PaperAlgorithm1(queries, get_operator("sum"))
    # One answers-map entry despite two queries: keyed by range.
    assert len(algorithm._answers) == 1


def test_rejects_non_uniform_lookback_plans():
    with pytest.raises(PlanError, match="constant range-in-partials"):
        PaperAlgorithm1(
            [Query(3, 3), Query(4, 4)], get_operator("sum")
        )


def test_rejects_non_invertible_operator():
    from repro.errors import InvalidOperatorError

    with pytest.raises(InvalidOperatorError):
        PaperAlgorithm1([Query(4, 2)], get_operator("max"))
