"""Integration: every multi-query algorithm vs the Recalc oracle."""

from __future__ import annotations

import pytest

from repro.baselines.recalc import RecalcMultiAggregator
from repro.operators.registry import get_operator
from repro.registry import available_algorithms, get_algorithm
from tests.conftest import int_stream

MULTI_ALGORITHMS = available_algorithms(multi_query=True)


@pytest.mark.parametrize("algorithm", MULTI_ALGORITHMS)
@pytest.mark.parametrize("operator_name", ["sum", "max"])
def test_max_multi_query_environment(algorithm, operator_name):
    """All ranges 1..n answered every slide (the Exp 2 workload)."""
    stream = int_stream(250, seed=17)
    spec = get_algorithm(algorithm)
    for window in (1, 2, 5, 9, 16):
        ranges = list(range(1, window + 1))
        got = spec.multi(get_operator(operator_name), ranges).run(stream)
        expected = RecalcMultiAggregator(
            get_operator(operator_name), ranges
        ).run(stream)
        assert got == expected, f"window={window}"


@pytest.mark.parametrize("algorithm", MULTI_ALGORITHMS)
@pytest.mark.parametrize("operator_name", ["sum", "max", "mean", "range"])
def test_sparse_range_sets(algorithm, operator_name):
    """Arbitrary (non-contiguous) range sets."""
    stream = int_stream(200, seed=18)
    spec = get_algorithm(algorithm)
    for ranges in ([1], [7], [2, 13], [1, 5, 6, 31], [3, 3, 3]):
        got = spec.multi(get_operator(operator_name), ranges).run(stream)
        expected = RecalcMultiAggregator(
            get_operator(operator_name), ranges
        ).run(stream)
        if operator_name in ("mean",):
            for got_row, expected_row in zip(got, expected):
                assert got_row == pytest.approx(expected_row)
        else:
            assert got == expected


@pytest.mark.parametrize("algorithm", MULTI_ALGORITHMS)
def test_answers_keyed_by_range(algorithm):
    spec = get_algorithm(algorithm)
    aggregator = spec.multi(get_operator("sum"), [4, 2, 9])
    answers = aggregator.step(5)
    assert set(answers) == {2, 4, 9}


@pytest.mark.parametrize("algorithm", MULTI_ALGORITHMS)
def test_multi_consistent_with_single(algorithm):
    """A multi-query run restricted to one range equals the single run."""
    stream = int_stream(150, seed=19)
    spec = get_algorithm(algorithm)
    single = spec.single(get_operator("max"), 8).run(stream)
    multi = [
        answers[8]
        for answers in spec.multi(get_operator("max"), [8]).run(stream)
    ]
    assert multi == single
