"""Integration: the §4.1 spike structure, asserted per algorithm.

Beyond the *size* of worst-case slides (test_worstcase_ops), the paper
makes periodicity claims: TwoStacks flips once per window iteration,
FlatFIT resets "once per [n + 1 slides]", DABA and SlickDeque (Inv)
never spike.  These tests verify the per-slide operation series has
exactly that structure.
"""

from __future__ import annotations

from repro.datasets.synthetic import materialise, uniform
from repro.metrics.opcount import count_ops
from repro.metrics.spikes import SpikeProfile
from repro.operators.registry import get_operator
from repro.registry import get_algorithm

WINDOW = 64
STREAM = materialise(uniform(30 * WINDOW, seed=17))
WARMUP = 2 * WINDOW


def per_slide(algorithm, operator_name="sum"):
    spec = get_algorithm(algorithm)
    profile = count_ops(
        lambda op: spec.single(op, WINDOW),
        get_operator(operator_name),
        STREAM,
    )
    return list(profile.per_slide[WARMUP:])


def test_twostacks_flips_once_per_window_iteration():
    profile = SpikeProfile.of(per_slide("twostacks"))
    assert profile.periodic
    assert profile.period == WINDOW


def test_flatfit_resets_once_per_window_period():
    profile = SpikeProfile.of(per_slide("flatfit"))
    assert profile.periodic
    # "The execution of FlatFIT follows a cyclical pattern which
    # repeats every n + 1 slides."
    assert profile.period in (WINDOW, WINDOW + 1)


def test_daba_never_spikes():
    profile = SpikeProfile.of(per_slide("daba"))
    assert profile.spike_count == 0


def test_slickdeque_inv_never_spikes():
    profile = SpikeProfile.of(per_slide("slickdeque", "sum"))
    assert profile.spike_count == 0
    assert profile.max_over_median == 1.0  # every slide identical


def test_naive_is_flat_but_expensive():
    series = per_slide("naive")
    profile = SpikeProfile.of(series)
    assert profile.spike_count == 0  # constant cost: no spikes...
    assert min(series) == WINDOW - 1  # ...because every slide is n-1


def test_slickdeque_noninv_spikes_are_aperiodic_on_random_input():
    profile = SpikeProfile.of(
        per_slide("slickdeque", "max"), threshold_ratio=3.0
    )
    # Input-driven: whatever spikes exist carry no fixed period.
    assert not profile.periodic


def test_flatfat_perfectly_flat_at_log_n():
    series = per_slide("flatfat")
    assert set(series) == {6}  # log2(64) every slide, exactly
