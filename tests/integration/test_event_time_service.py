"""Integration tests for the event-time sharded service.

The chaos scenario the watermark checkpointing exists for: a worker is
SIGKILLed while the ingress reorder buffer still holds unreleased
records, the supervisor restarts it from its checkpoint, and the
restored shard's watermark never regresses — replayed outputs carry
stale slice watermarks, which the merger's monotone per-shard
watermark must ignore, so the final answers are still byte-identical
to a fault-free single-node run.

Marked ``chaos`` (real processes, SIGKILL, restart backoffs); the
in-process equivalence tests live in
``tests/property/test_prop_event_time.py``.
"""

from __future__ import annotations

import os
import signal
import time

import pytest

from repro.operators.registry import get_operator
from repro.service import AggregationService
from repro.stream.engine import EventTimeEngine
from repro.windows.timebased import TimeQuery

pytestmark = [pytest.mark.chaos, pytest.mark.timeout(120)]

QUERIES = (TimeQuery(2.0, 1.0), TimeQuery(5.0, 2.0))
NUM_SHARDS = 3
LATENESS = 1.0


def _event_stream(count):
    """A bounded-disorder (key, timestamp, value) stream.

    Timestamps are strictly increasing on a 0.1s grid before the
    shuffle; the deterministic jitter stays under the lateness bound,
    so every record is releasable and the sorted oracle is exact.
    """
    records = [
        (
            f"sensor-{i % 7}",
            i / 10 + 0.011,
            (i * 37 + 5) % 203 - 101,
        )
        for i in range(count)
    ]
    return sorted(
        records, key=lambda r: r[1] + ((hash(r[0]) ^ int(r[1] * 10)) % 9) / 10
    )


def _expected(records):
    oracle = EventTimeEngine(
        list(QUERIES), get_operator("sum"), lateness=LATENESS
    )
    answers = []
    for _, timestamp, value in records:
        answers.extend(oracle.feed(timestamp, value))
    answers.extend(oracle.finish())
    return answers


def _wait_pid_dead(pid, timeout=10.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        try:
            with open(f"/proc/{pid}/stat", "rb") as stat:
                line = stat.read().decode("ascii", "replace")
        except (FileNotFoundError, ProcessLookupError):
            if not os.path.isdir("/proc"):
                time.sleep(0.05)
            return
        state = line.rpartition(")")[2].split()
        if state and state[0] in ("Z", "X", "x"):
            return
        time.sleep(0.005)
    raise AssertionError(
        f"pid {pid} still running {timeout}s after SIGKILL"
    )


def test_worker_kill_mid_reorder_keeps_watermark_monotone():
    """SIGKILL a worker while the reorder buffer is occupied.

    The restored worker replays from its checkpoint; its outputs echo
    a slice watermark that must never regress below what the
    supervisor had already absorbed, and the final answers must equal
    the single-node sorted oracle exactly.
    """
    records = _event_stream(600)
    expected = _expected(records)
    head, tail = records[:300], records[300:]

    service = AggregationService(
        list(QUERIES),
        get_operator("sum"),
        num_shards=NUM_SHARDS,
        mode="time",
        transport="process",
        lateness=LATENESS,
        batch_size=10,
        checkpoint_interval=2,
        restart_backoff=0.0,
        stall_timeout=10.0,
        heartbeat_interval=0.1,
    )
    answers = []
    try:
        for key, timestamp, value in head:
            service.submit_event(key, value, timestamp)
        answers.extend(service.poll())
        # Mid-reorder: the lateness bound keeps the tail of the stream
        # buffered at all times, so the buffer is provably occupied.
        stats = service.event_time_stats()
        assert stats["pending_reorder"] > 0

        watermarks_before = [
            handle.watermark for handle in service._transport.handles
        ]
        victim = service.shard_pids()[1]
        os.kill(victim, signal.SIGKILL)
        _wait_pid_dead(victim)

        for key, timestamp, value in tail:
            service.submit_event(key, value, timestamp)
            answers.extend(service.poll())
        result = service.close(timeout=60.0)
    except BaseException:
        service.abort()
        raise

    answers.extend(service.poll())

    # The worker recovered (restart budget not exhausted) ...
    assert result.stats.failed_shards == ()
    # ... its watermark only ever advanced across the crash ...
    watermarks_after = [
        handle.watermark for handle in service._transport.handles
    ]
    for before, after in zip(watermarks_before, watermarks_after):
        assert after >= before
    # ... every per-shard merge watermark is monotone by construction,
    # and the replayed outputs did not perturb the answers:
    assert answers == expected
    assert result.stats.late_records == 0


def test_repeated_kills_still_exact():
    """Two kills of different shards; answers stay byte-identical."""
    records = _event_stream(600)
    expected = _expected(records)

    service = AggregationService(
        list(QUERIES),
        get_operator("sum"),
        num_shards=NUM_SHARDS,
        mode="time",
        transport="process",
        lateness=LATENESS,
        batch_size=10,
        checkpoint_interval=2,
        restart_backoff=0.0,
        stall_timeout=10.0,
        heartbeat_interval=0.1,
    )
    answers = []
    try:
        for index, (key, timestamp, value) in enumerate(records):
            service.submit_event(key, value, timestamp)
            if index in (200, 400):
                answers.extend(service.poll())
                victim = service.shard_pids()[(index // 200) % NUM_SHARDS]
                os.kill(victim, signal.SIGKILL)
                _wait_pid_dead(victim)
        result = service.close(timeout=60.0)
    except BaseException:
        service.abort()
        raise

    answers.extend(service.poll())
    assert result.stats.failed_shards == ()
    assert answers == expected
