"""Integration: every single-query algorithm vs the Recalc oracle.

The core correctness statement of the whole library: for any operator,
window size, and input stream, every final-aggregation algorithm
produces exactly the answers of from-scratch re-evaluation.
"""

from __future__ import annotations

import pytest

from repro.baselines.recalc import RecalcAggregator
from repro.datasets.adversarial import deque_filler
from repro.datasets.synthetic import constant, materialise, sawtooth
from repro.operators.registry import get_operator
from repro.registry import available_algorithms, get_algorithm
from tests.conftest import int_stream

WINDOWS = (1, 2, 3, 4, 7, 8, 16, 31, 64)
ALGORITHMS = available_algorithms()


@pytest.mark.parametrize("algorithm", ALGORITHMS)
@pytest.mark.parametrize("operator_name", ["sum", "max", "min", "count"])
def test_matches_oracle_on_random_stream(algorithm, operator_name):
    stream = int_stream(400, seed=hash((algorithm, operator_name)) % 999)
    spec = get_algorithm(algorithm)
    for window in WINDOWS:
        got = spec.single(get_operator(operator_name), window).run(stream)
        expected = RecalcAggregator(
            get_operator(operator_name), window
        ).run(stream)
        assert got == expected, f"window={window}"


@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_matches_oracle_on_algebraic_operators(algorithm):
    stream = [v / 7 + 10 for v in int_stream(200, seed=5)]
    spec = get_algorithm(algorithm)
    for operator_name in ("mean", "variance", "stddev", "range",
                          "geometric_mean"):
        got = spec.single(get_operator(operator_name), 16).run(stream)
        expected = RecalcAggregator(
            get_operator(operator_name), 16
        ).run(stream)
        assert got == pytest.approx(expected, nan_ok=True), operator_name


@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_matches_oracle_on_adversarial_streams(algorithm):
    spec = get_algorithm(algorithm)
    for stream in (
        list(deque_filler(16, cycles=4)),
        materialise(sawtooth(200, period=16)),
        materialise(constant(100, 3.0)),
        list(range(100)),
        list(range(100, 0, -1)),
    ):
        got = spec.single(get_operator("max"), 16).run(stream)
        expected = RecalcAggregator(get_operator("max"), 16).run(stream)
        assert got == expected


@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_window_of_one(algorithm):
    """Degenerate window: the answer is always the newest value."""
    stream = int_stream(50, seed=6)
    spec = get_algorithm(algorithm)
    got = spec.single(get_operator("sum"), 1).run(stream)
    assert got == stream


@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_window_larger_than_stream(algorithm):
    """Warm-up only: the answer covers everything seen so far."""
    stream = int_stream(20, seed=7)
    spec = get_algorithm(algorithm)
    got = spec.single(get_operator("sum"), 1000).run(stream)
    expected = [sum(stream[: i + 1]) for i in range(len(stream))]
    assert got == expected


@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_string_operator(algorithm):
    """Alphabetical Max over strings (paper Section 1)."""
    words = ["kiwi", "apple", "zebra", "fig", "pear", "apricot", "yak"]
    spec = get_algorithm(algorithm)
    got = spec.single(get_operator("alpha_max"), 3).run(words)
    expected = RecalcAggregator(get_operator("alpha_max"), 3).run(words)
    assert got == expected
