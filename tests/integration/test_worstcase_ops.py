"""Integration: the §4.1 worst-case narratives, constructed.

The paper argues SlickDeque (Non-Inv)'s n-operation slide needs a
1-in-n! input, while DABA never exceeds 8 operations on *any* input.
These tests build the adversarial inputs and check both sides.
"""

from __future__ import annotations

import pytest

from repro.baselines.daba import DABAAggregator
from repro.core.slickdeque_noninv import (
    SlickDequeNonInv,
    SlickDequeNonInvMulti,
)
from repro.datasets.adversarial import (
    ascending_stream,
    deque_filler,
    descending_stream,
)
from repro.metrics.opcount import count_ops
from repro.operators.instrumented import CountingOperator, SlideOpRecorder
from repro.operators.noninvertible import MaxOperator
from repro.operators.invertible import SumOperator

WINDOW = 64


def test_slickdeque_worst_slide_reaches_n():
    """The adversarial dominating value deletes the whole deque."""
    profile = count_ops(
        lambda op: SlickDequeNonInv(op, WINDOW),
        MaxOperator(),
        list(deque_filler(WINDOW, cycles=3)),
    )
    assert profile.worst_case >= WINDOW - 1


def test_slickdeque_amortized_stays_below_2_even_adversarially():
    """§4.1: at most two ⊕ per element lifetime — on any input."""
    for stream in (
        list(deque_filler(WINDOW, cycles=6)),
        list(descending_stream(12 * WINDOW)),
        list(ascending_stream(12 * WINDOW)),
    ):
        profile = count_ops(
            lambda op: SlickDequeNonInv(op, WINDOW),
            MaxOperator(),
            stream,
        )
        assert profile.amortized <= 2.0


def test_slickdeque_multi_worst_case_answers_stay_comparison_only():
    """Even a full deque answers all n queries with 0 extra ⊕."""
    ranges = list(range(1, WINDOW + 1))
    counting = CountingOperator(MaxOperator())
    aggregator = SlickDequeNonInvMulti(counting, ranges)
    recorder = SlideOpRecorder(counting)
    for value in descending_stream(4 * WINDOW):
        aggregator.step(value)
        recorder.mark_slide()
    # Descending input: each insert costs exactly 1 dominance test.
    steady = recorder.per_slide[WINDOW:]
    assert max(steady) == 1


def test_daba_flat_on_adversarial_input():
    """DABA's worst case is input-independent: ≤ 8 ops everywhere."""
    for stream in (
        list(deque_filler(WINDOW, cycles=6)),
        list(descending_stream(10 * WINDOW)),
        list(ascending_stream(10 * WINDOW)),
    ):
        counting = CountingOperator(MaxOperator())
        aggregator = DABAAggregator(counting, WINDOW)
        recorder = SlideOpRecorder(counting)
        for value in stream:
            aggregator.step(value)
            recorder.mark_slide()
        assert recorder.worst_case_ops <= 8
        assert aggregator.forced_finishes == 0


def test_daba_beats_slickdeque_only_on_the_adversarial_slide():
    """§4.1 Summary: SlickDeque can (rarely) be beaten by DABA on a
    single slide, but never on the amortized count."""
    stream = list(deque_filler(WINDOW, cycles=4))
    slick = count_ops(
        lambda op: SlickDequeNonInv(op, WINDOW), MaxOperator(), stream
    )
    daba = count_ops(
        lambda op: DABAAggregator(op, WINDOW), SumOperator(), stream
    )
    assert slick.worst_case > daba.worst_case  # the 1-in-n! slide
    assert slick.amortized < daba.amortized  # but cheaper overall


@pytest.mark.parametrize("window", [2, 3, 5, 16, 100])
def test_daba_bound_across_window_sizes(window):
    counting = CountingOperator(SumOperator())
    aggregator = DABAAggregator(counting, window)
    recorder = SlideOpRecorder(counting)
    for value in range(12 * window):
        aggregator.step(float(value % 17))
        recorder.mark_slide()
    assert recorder.worst_case_ops <= 8
    assert aggregator.forced_finishes == 0
