"""Integration: SharedSlickDeque over heterogeneous ACQ sets."""

from __future__ import annotations

import pytest

from repro.core.multiquery import SharedSlickDeque
from repro.errors import InvalidOperatorError
from repro.operators.registry import get_operator
from repro.windows.query import Query
from tests.conftest import int_stream

QUERY_SETS = [
    [Query(6, 2), Query(8, 4)],               # paper Example 1
    [Query(3, 3), Query(4, 4)],               # non-uniform lookback
    [Query(7, 3), Query(5, 2), Query(10, 6)], # three-way fragments
    [Query(5, 1), Query(3, 1)],               # paper Examples 2-3
    [Query(1, 1)],                            # degenerate
    [Query(12, 5), Query(12, 3)],             # shared range, two slides
]


def brute(queries, operator_name, stream):
    op = get_operator(operator_name)
    out = []
    for t in range(1, len(stream) + 1):
        # Plan order: descending range; ties by ascending slide (the
        # stable sort over the plan's sorted unique query set).
        for q in sorted(queries,
                        key=lambda q: (-q.range_size, q.slide)):
            if q.reports_at(t):
                window = stream[max(0, t - q.range_size):t]
                out.append((t, q, op.lower(op.fold(window))))
    return out


@pytest.mark.parametrize("operator_name", ["sum", "max"])
@pytest.mark.parametrize("technique", ["panes", "pairs"])
@pytest.mark.parametrize("queries", QUERY_SETS,
                         ids=[str(i) for i in range(len(QUERY_SETS))])
def test_shared_execution_matches_brute_force(
    operator_name, technique, queries
):
    stream = int_stream(240, seed=23)
    engine = SharedSlickDeque(
        queries, get_operator(operator_name), technique
    )
    got = [(p, q, a) for p, q, a in engine.run(stream)]
    assert got == brute(queries, operator_name, stream)


def test_rejects_non_distributive_operator():
    with pytest.raises(InvalidOperatorError):
        SharedSlickDeque([Query(4, 2)], get_operator("range"))


def test_w_size_matches_plan():
    engine = SharedSlickDeque(
        [Query(6, 2), Query(8, 4)], get_operator("sum")
    )
    assert engine.w_size == 4  # four 2-tuple partials cover range 8


def test_feed_returns_only_due_answers():
    engine = SharedSlickDeque([Query(4, 2)], get_operator("sum"))
    assert engine.feed(1) == []          # mid-partial
    produced = engine.feed(2)            # partial closes, query due
    assert len(produced) == 1
    position, query, answer = produced[0]
    assert (position, answer) == (2, 3)
    assert query.range_size == 4


def test_long_run_stays_consistent():
    """Many cycles through the composite slide, both engines."""
    stream = int_stream(1200, seed=29)
    for operator_name in ("sum", "max"):
        queries = [Query(9, 3), Query(15, 5)]
        engine = SharedSlickDeque(
            queries, get_operator(operator_name), "pairs"
        )
        got = list(engine.run(stream))
        assert got == brute(queries, operator_name, stream)
