"""Integration: trace IDs survive the full submit → reply loop.

A trace minted at SUBMIT time must ride the wire into the server,
through the shard folds and the global merge, and come back on the
ANSWERS reply that releases the answers it caused — with a per-stage
breakdown (decode, admission, submit, shard_fold, merge, reply)
recorded in the server's tracer.  And because the trace-id field is a
protocol v2 addition, a peer that never traces must keep speaking
byte-identical protocol v1 and still be understood.

Everything runs on ephemeral localhost ports with the inline service
transport for determinism.
"""

from __future__ import annotations

import socket

import pytest

from repro import (
    AggregationService,
    AggregationClient,
    AggregationServer,
    Query,
    ServerThread,
    get_operator,
    mint_trace_id,
)
from repro.net.protocol import (
    LEGACY_PROTOCOL_VERSION,
    FrameDecoder,
    FrameType,
    decode_answers,
    encode_frame,
)
from repro.stream.engine import StreamEngine
from repro.stream.sink import CollectSink

QUERIES = [Query(16, 8), Query(12, 4)]
KEYS = [f"sensor-{i}" for i in range(5)]


def keyed_records(count: int, start: int = 0):
    return [
        (KEYS[i % len(KEYS)], (i * 37 + 5) % 211 - 105)
        for i in range(start, start + count)
    ]


def reference_answers(records):
    sink = CollectSink()
    StreamEngine(QUERIES, get_operator("sum"), sinks=[sink]).run(
        value for _, value in records
    )
    return sink.answers


def make_server(**server_kwargs) -> AggregationServer:
    """Inline two-shard global-mode service behind a server.

    ``batch_size=1`` ships every record immediately, so the answers a
    traced submission causes are released by the very next POLL.
    """
    service = AggregationService(
        QUERIES,
        get_operator("sum"),
        num_shards=2,
        transport="inline",
        batch_size=1,
    )
    server_kwargs.setdefault("slow_threshold", 0.0)
    return AggregationServer(service, **server_kwargs)


@pytest.mark.timeout(120)
class TestTraceSurvivesTheLoop:
    def test_submit_echoes_and_poll_returns_the_answer_trace(self):
        server = make_server()
        with ServerThread(server) as thread:
            with AggregationClient("127.0.0.1", thread.port) as client:
                # Untraced warm-up: replies carry no trace at all.
                client.submit_batch(keyed_records(60))
                assert client.last_reply_trace_id is None
                warmup = client.poll()
                assert warmup
                assert client.last_reply_trace_id is None

                # Traced submission: the OK reply echoes the trace ...
                trace = mint_trace_id()
                accepted = client.submit_batch(
                    keyed_records(40, start=60), trace_id=trace
                )
                assert accepted == 40
                assert client.last_reply_trace_id == trace

                # ... and the POLL that releases its answers carries
                # it back as the reply trace.
                released = client.poll()
                assert released
                assert client.last_reply_trace_id == trace

                answers, _ = client.drain()
        # DRAIN replays the complete answer history; the incremental
        # polls must be a prefix of it, and it must match a
        # single-process run of the same records.
        assert answers == reference_answers(keyed_records(100))
        assert warmup + released == answers[: len(warmup) + len(released)]

    def test_finished_trace_records_every_pipeline_stage(self):
        server = make_server(slow_threshold=0.0)
        with ServerThread(server) as thread:
            with AggregationClient("127.0.0.1", thread.port) as client:
                trace = mint_trace_id()
                client.submit_batch(
                    keyed_records(60), trace_id=trace
                )
                client.poll()
                assert client.last_reply_trace_id == trace

        slow = [
            op
            for op in server.telemetry.tracer.slow_ops()
            if op["trace_id"] == trace
        ]
        assert len(slow) == 1
        stages = {stage for stage, _ in slow[0]["stages"]}
        assert stages >= {
            "decode",
            "admission",
            "submit",
            "shard_fold",
            "merge",
            "reply",
        }
        assert all(
            seconds >= 0.0 for _, seconds in slow[0]["stages"]
        )
        assert slow[0]["total_seconds"] >= 0.0

    def test_stats_exposes_the_telemetry_snapshot(self):
        server = make_server()
        with ServerThread(server) as thread:
            with AggregationClient("127.0.0.1", thread.port) as client:
                trace = mint_trace_id()
                client.submit_batch(
                    keyed_records(60), trace_id=trace
                )
                client.poll()
                stats = client.stats()

        telemetry = stats["telemetry"]
        assert telemetry["traces"]["finished"] >= 1
        metrics = telemetry["metrics"]
        for name in (
            "repro_net_decode_seconds",
            "repro_net_submit_seconds",
            "repro_net_reply_seconds",
            "repro_shard_fold_seconds",
            "repro_merge_seconds",
        ):
            series = metrics[name]["series"]
            assert sum(row["count"] for row in series) > 0, name

    def test_poll_with_no_traced_answers_echoes_its_own_trace(self):
        server = make_server()
        with ServerThread(server) as thread:
            with AggregationClient("127.0.0.1", thread.port) as client:
                trace = mint_trace_id()
                answers = client.poll(trace_id=trace)
                assert answers == []
                assert client.last_reply_trace_id == trace


@pytest.mark.timeout(120)
class TestLegacyProtocolStillWorks:
    """A v1-only peer interoperates, byte for byte."""

    def _exchange(self, sock, frame: bytes, decoder: FrameDecoder):
        """Send one raw frame; return (reply_bytes, decoded_frame)."""
        sock.sendall(frame)
        raw = bytearray()
        while True:
            chunk = sock.recv(65536)
            assert chunk, "server closed the connection unexpectedly"
            raw.extend(chunk)
            decoder.feed(chunk)
            frames = list(decoder.frames_traced())
            if frames:
                assert len(frames) == 1
                return bytes(raw), frames[0]

    def test_untraced_conversation_is_pure_v1_both_ways(self):
        server = make_server()
        with ServerThread(server) as thread:
            with socket.create_connection(
                ("127.0.0.1", thread.port), timeout=30
            ) as sock:
                decoder = FrameDecoder()

                submit = encode_frame(
                    FrameType.SUBMIT_BATCH, keyed_records(60)
                )
                # An untraced frame *is* the legacy wire format.
                assert submit[2] == LEGACY_PROTOCOL_VERSION
                raw, reply = self._exchange(sock, submit, decoder)
                assert raw[2] == LEGACY_PROTOCOL_VERSION
                assert reply.frame_type is FrameType.OK
                assert reply.trace_id is None
                assert reply.payload["accepted"] == 60

                raw, reply = self._exchange(
                    sock,
                    encode_frame(FrameType.POLL, None),
                    decoder,
                )
                assert raw[2] == LEGACY_PROTOCOL_VERSION
                assert reply.frame_type is FrameType.ANSWERS
                assert reply.trace_id is None
                assert decode_answers(reply.payload)

                sock.sendall(encode_frame(FrameType.CLOSE, None))

    def test_v1_and_v2_frames_interleave_on_one_connection(self):
        server = make_server()
        with ServerThread(server) as thread:
            with socket.create_connection(
                ("127.0.0.1", thread.port), timeout=30
            ) as sock:
                decoder = FrameDecoder()
                trace = mint_trace_id()

                _, reply = self._exchange(
                    sock,
                    encode_frame(
                        FrameType.SUBMIT_BATCH,
                        keyed_records(30),
                        trace_id=trace,
                    ),
                    decoder,
                )
                assert reply.trace_id == trace

                _, reply = self._exchange(
                    sock,
                    encode_frame(
                        FrameType.SUBMIT_BATCH,
                        keyed_records(30, start=30),
                    ),
                    decoder,
                )
                assert reply.trace_id is None
                assert reply.payload["accepted"] == 30

                _, reply = self._exchange(
                    sock,
                    encode_frame(FrameType.POLL, None),
                    decoder,
                )
                assert reply.frame_type is FrameType.ANSWERS
                # The newest released answer came from the untraced
                # second batch, so the reply may legitimately carry
                # either no trace (last answer untraced) — the field
                # reflects answer attribution, not the POLL request.
                assert reply.trace_id in (None, trace)

                sock.sendall(encode_frame(FrameType.CLOSE, None))

    def test_legacy_client_never_sees_v2_even_when_others_trace(self):
        """Tracing traffic on one connection must not leak v2 frames
        into the replies of a concurrent v1-only connection."""
        server = make_server()
        with ServerThread(server) as thread:
            with AggregationClient(
                "127.0.0.1", thread.port
            ) as tracing_client, socket.create_connection(
                ("127.0.0.1", thread.port), timeout=30
            ) as legacy:
                tracing_client.submit_batch(
                    keyed_records(40), trace_id=mint_trace_id()
                )
                decoder = FrameDecoder()
                raw, reply = self._exchange(
                    legacy,
                    encode_frame(FrameType.STATS, None),
                    decoder,
                )
                assert raw[2] == LEGACY_PROTOCOL_VERSION
                assert reply.frame_type is FrameType.STATS_REPLY
                assert reply.trace_id is None
                legacy.sendall(encode_frame(FrameType.CLOSE, None))
