"""Integration tests: real worker processes, fault injection, drops.

These exercise the process transport end to end — equivalence against
the single-process engine for the paper's acceptance operators, a
SIGKILL'd worker restored from its checkpoint with identical answers,
and exact accounting under the drop backpressure policy.
"""

from __future__ import annotations

import os
import signal
import time

import pytest

from repro.operators.registry import get_operator
from repro.service import AggregationService
from repro.stream.engine import StreamEngine
from repro.stream.sink import CollectSink
from repro.windows.query import Query

QUERIES = (Query(12, 4), Query(8, 2))


def _records(count):
    # Deterministic integers: cross-shard merging is exact on ints.
    return [
        (f"sensor-{i % 11}", (i * 37 + 5) % 203 - 101)
        for i in range(count)
    ]


def _expected(operator_name, records):
    sink = CollectSink()
    StreamEngine(
        QUERIES, get_operator(operator_name), sinks=[sink]
    ).run(value for _, value in records)
    return sink.answers


@pytest.mark.parametrize("operator_name", ["sum", "count", "max", "mean"])
def test_four_shard_process_answers_equal_single_process(operator_name):
    records = _records(600)
    with AggregationService(
        QUERIES,
        get_operator(operator_name),
        num_shards=4,
        batch_size=32,
    ) as service:
        service.submit_many(records)
        result = service.close()
    assert result.answers == _expected(operator_name, records)
    assert result.stats.records_processed == len(records)
    assert result.stats.dropped_records == 0
    assert len(result.stats.shards) == 4


def test_killed_worker_is_restored_and_answers_are_identical():
    records = _records(900)
    service = AggregationService(
        QUERIES,
        get_operator("sum"),
        num_shards=4,
        batch_size=16,
        checkpoint_interval=2,
    )
    try:
        midpoint = len(records) // 2
        service.submit_many(records[:midpoint])
        service.poll()
        victim = service.shard_pids()[2]
        os.kill(victim, signal.SIGKILL)
        # Give the OS a moment to reap so liveness checks see the death.
        time.sleep(0.05)
        service.submit_many(records[midpoint:])
        result = service.close()
    except BaseException:
        service.abort()
        raise
    assert result.answers == _expected("sum", records)
    restores = [shard.restores for shard in result.stats.shards]
    assert sum(restores) >= 1, restores
    assert result.stats.records_processed == len(records)


def test_drop_policy_accounts_for_every_record():
    records = _records(800)
    with AggregationService(
        QUERIES,
        get_operator("sum"),
        num_shards=4,
        batch_size=8,
        queue_capacity=1,
        backpressure="drop",
        checkpoint_interval=0,
        shard_delay_seconds=0.003,
    ) as service:
        service.submit_many(records)
        result = service.close()
    stats = result.stats
    assert stats.records_submitted == len(records)
    assert (
        stats.records_processed + stats.dropped_records
        == stats.records_submitted
    )
    # The slow shards must actually have shed load for this test to
    # mean anything; the delay above makes that overwhelmingly likely.
    assert stats.dropped_records > 0
    assert stats.dropped_records == sum(
        shard.dropped for shard in stats.shards
    )


def test_per_key_mode_over_processes_matches_per_key_engines():
    records = _records(400)
    with AggregationService(
        QUERIES,
        get_operator("first"),
        num_shards=3,
        mode="per_key",
        batch_size=16,
    ) as service:
        service.submit_many(records)
        result = service.close()

    values_by_key = {}
    for key, value in records:
        values_by_key.setdefault(key, []).append(value)
    assert set(result.per_key) == {
        key for key, values in values_by_key.items()
        if _expected_per_key(values)
    }
    for key, values in values_by_key.items():
        assert result.per_key.get(key, []) == _expected_per_key(values)


def _expected_per_key(values):
    sink = CollectSink()
    StreamEngine(QUERIES, get_operator("first"), sinks=[sink]).run(values)
    return sink.answers
