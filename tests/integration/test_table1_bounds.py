"""Integration: measured operation counts obey Table 1.

These tests pin the *complexity* reproduction: per-slide aggregate
operation counts (the paper's §4.1 metric) for every algorithm, in
steady state on random input, must match the Table 1 expressions.
"""

from __future__ import annotations

import math

import pytest

from repro.datasets.synthetic import materialise, uniform
from repro.metrics.opcount import count_ops
from repro.operators.registry import get_operator
from repro.registry import get_algorithm

WINDOW = 64
LOG_N = int(math.log2(WINDOW))
STREAM = materialise(uniform(40 * WINDOW, seed=3))
WARMUP = 2 * WINDOW


def profile_single(algorithm, operator_name):
    spec = get_algorithm(algorithm)
    return count_ops(
        lambda op: spec.single(op, WINDOW),
        get_operator(operator_name),
        STREAM,
    ).steady_state(WARMUP)


def profile_multi(algorithm, operator_name):
    spec = get_algorithm(algorithm)
    ranges = list(range(1, WINDOW + 1))
    return count_ops(
        lambda op: spec.multi(op, ranges),
        get_operator(operator_name),
        STREAM[: 10 * WINDOW],
    ).steady_state(WARMUP)


class TestSingleQuery:
    def test_naive_exactly_n_minus_1(self):
        profile = profile_single("naive", "sum")
        assert profile.amortized == WINDOW - 1
        assert profile.worst_case == WINDOW - 1

    def test_flatfat_exactly_log_n(self):
        profile = profile_single("flatfat", "sum")
        assert profile.amortized == LOG_N
        assert profile.worst_case == LOG_N

    def test_bint_within_2x_of_flatfat(self):
        profile = profile_single("bint", "sum")
        assert LOG_N <= profile.amortized <= 2 * LOG_N + 2

    def test_flatfit_amortized_3_worst_n(self):
        profile = profile_single("flatfit", "sum")
        assert profile.amortized < 3.5
        assert profile.worst_case == WINDOW - 1

    def test_twostacks_amortized_3_worst_n(self):
        profile = profile_single("twostacks", "sum")
        assert profile.amortized < 3.5
        assert profile.worst_case >= WINDOW

    def test_daba_worst_case_constant(self):
        profile = profile_single("daba", "sum")
        assert 3.0 <= profile.amortized <= 5.5
        assert profile.worst_case <= 8

    def test_slickdeque_inv_exactly_2(self):
        profile = profile_single("slickdeque", "sum")
        assert profile.amortized == 2.0
        assert profile.worst_case == 2

    def test_slickdeque_noninv_below_2(self):
        profile = profile_single("slickdeque", "max")
        assert profile.amortized < 2.0
        # Random input keeps even the worst slide far below n.
        assert profile.worst_case < WINDOW // 2


class TestMaxMultiQuery:
    def test_naive_quadratic(self):
        profile = profile_multi("naive", "sum")
        assert profile.amortized == WINDOW**2 / 2 - WINDOW / 2

    def test_flatfat_n_log_n(self):
        profile = profile_multi("flatfat", "sum")
        assert WINDOW <= profile.amortized <= WINDOW * LOG_N * 1.5

    def test_flatfit_n_minus_1(self):
        profile = profile_multi("flatfit", "sum")
        assert profile.amortized <= WINDOW
        assert profile.amortized >= WINDOW - 2

    def test_slickdeque_inv_exactly_2n(self):
        profile = profile_multi("slickdeque", "sum")
        assert profile.amortized == 2 * WINDOW

    def test_slickdeque_noninv_still_below_2(self):
        """The paper's headline: multi-query answers are free."""
        profile = profile_multi("slickdeque", "max")
        assert profile.amortized < 2.0


class TestOrdering:
    def test_single_query_ranking_matches_table1(self):
        """Fewer ops: slickdeque < {flatfit, twostacks} < flatfat <
        bint < naive (Sum, steady state)."""
        by_algorithm = {
            name: profile_single(name, "sum").amortized
            for name in (
                "naive", "flatfat", "bint", "flatfit", "twostacks",
                "slickdeque",
            )
        }
        assert by_algorithm["slickdeque"] < by_algorithm["flatfit"]
        assert by_algorithm["slickdeque"] < by_algorithm["twostacks"]
        assert by_algorithm["flatfit"] < by_algorithm["flatfat"]
        assert by_algorithm["flatfat"] < by_algorithm["bint"]
        assert by_algorithm["bint"] < by_algorithm["naive"]

    def test_multi_query_slickdeque_dominates(self):
        slick = profile_multi("slickdeque", "max").amortized
        for rival in ("naive", "flatfat", "bint", "flatfit"):
            assert slick < profile_multi(rival, "max").amortized
