"""Integration tests: the shm data plane is answer-identical to pickle.

The zero-copy transport swaps the wire representation underneath the
sharded service without touching aggregation logic, so its acceptance
test is blunt: the same stream through ``data_plane="shm"``,
``data_plane="pickle"``, and the inline transport must produce the
same answers, for both the columnar fast path and every fallback
(mixed numerics, non-numeric values).  Alongside equivalence, these
tests pin the observability surface (per-plane frame counters, gateway
snapshots, the wire ``SUBMIT_COLUMN`` path) that the benchmarks and
docs rely on.
"""

from __future__ import annotations

import pytest

from repro.errors import ServiceError
from repro.net.client import AggregationClient
from repro.net.server import AggregationServer, ServerThread
from repro.operators.registry import get_operator
from repro.service import AggregationService
from repro.service.transport import shm_supported
from repro.stream.engine import StreamEngine
from repro.stream.sink import CollectSink
from repro.windows.query import Query

pytestmark = pytest.mark.timeout(120)

needs_shm = pytest.mark.skipif(
    not shm_supported(),
    reason="multiprocessing.shared_memory or fork unavailable",
)

QUERIES = [Query(16, 8), Query(12, 4)]
KEYS = [f"sensor-{i}" for i in range(7)]


def keyed_records(count, value=lambda i: (i * 37 + 5) % 211 - 105):
    return [(KEYS[i % len(KEYS)], value(i)) for i in range(count)]


def reference_answers(records, operator_name="sum"):
    sink = CollectSink()
    StreamEngine(QUERIES, get_operator(operator_name), sinks=[sink]).run(
        value for _, value in records
    )
    return sink.answers


def run_service(records, operator_name="sum", **kwargs):
    kwargs.setdefault("num_shards", 2)
    kwargs.setdefault("batch_size", 16)
    service = AggregationService(
        QUERIES, get_operator(operator_name), **kwargs
    )
    service.submit_many(records)
    result = service.close()
    return result


@needs_shm
def test_shm_pickle_and_inline_answers_identical():
    records = keyed_records(300)
    expected = reference_answers(records)
    shm = run_service(records, transport="process", data_plane="shm")
    pickled = run_service(records, transport="process", data_plane="pickle")
    inline = run_service(records, transport="inline")
    assert shm.answers == expected
    assert pickled.answers == expected
    assert inline.answers == expected
    assert shm.stats.records_processed == len(records)
    assert shm.stats.dead_letters == 0


@needs_shm
def test_numeric_batches_travel_columnar():
    records = keyed_records(300)
    service = AggregationService(
        QUERIES, get_operator("sum"), num_shards=2, batch_size=16,
        transport="process", data_plane="shm",
    )
    service.submit_many(records)
    stats = service.transport_stats()
    result = service.close()
    assert stats["data_plane"] == "shm"
    assert stats["frames_columnar"] > 0
    assert stats["frames_pickled"] == 0
    assert stats["encode_seconds"] >= 0.0
    assert result.answers == reference_answers(records)


@needs_shm
def test_float_batches_travel_columnar_and_match_inline():
    records = keyed_records(240, value=lambda i: (i % 13) * 0.5 - 3.0)
    shm = run_service(records, transport="process", data_plane="shm")
    inline = run_service(records, transport="inline")
    assert shm.answers == inline.answers


@needs_shm
def test_non_numeric_values_fall_back_to_pickle_frames():
    # ``max`` over strings: nothing here can take an i64/f64 column,
    # so every batch must ship as a CRC-protected pickled frame — and
    # the answers must still match the inline transport exactly.
    records = [
        (KEYS[i % len(KEYS)], f"value-{(i * 53) % 97:02d}")
        for i in range(240)
    ]
    service = AggregationService(
        QUERIES, get_operator("max"), num_shards=2, batch_size=16,
        transport="process", data_plane="shm",
    )
    service.submit_many(records)
    stats = service.transport_stats()
    result = service.close()
    assert stats["frames_pickled"] > 0
    assert stats["frames_columnar"] == 0
    inline = run_service(records, "max", transport="inline")
    assert result.answers == inline.answers


@needs_shm
def test_mixed_numeric_batches_fall_back_and_match():
    # Alternating int/float values defeat the capability check batch
    # by batch; answers still match the pickle plane bit for bit.
    records = keyed_records(
        240, value=lambda i: i if i % 2 else i * 0.25
    )
    shm = run_service(records, transport="process", data_plane="shm")
    pickled = run_service(
        records, transport="process", data_plane="pickle"
    )
    assert shm.answers == pickled.answers


@needs_shm
def test_submit_column_matches_submit_many():
    values = [(i * 37 + 5) % 211 - 105 for i in range(200)]
    columnar = AggregationService(
        QUERIES, get_operator("sum"), num_shards=2, batch_size=16,
        transport="process", data_plane="shm",
    )
    columnar.submit_column("k", values)
    rowwise = AggregationService(
        QUERIES, get_operator("sum"), num_shards=2, batch_size=16,
        transport="process", data_plane="shm",
    )
    rowwise.submit_many([("k", v) for v in values])
    assert columnar.close().answers == rowwise.close().answers


def test_explicit_shm_errors_when_unsupported(monkeypatch):
    monkeypatch.setattr(
        "repro.service.transport.shm_supported", lambda: False
    )
    with pytest.raises(ServiceError):
        AggregationService(
            QUERIES, get_operator("sum"), num_shards=2,
            transport="process", data_plane="shm",
        )


def test_auto_downgrades_to_pickle_when_unsupported(monkeypatch):
    monkeypatch.setattr(
        "repro.service.transport.shm_supported", lambda: False
    )
    records = keyed_records(120)
    service = AggregationService(
        QUERIES, get_operator("sum"), num_shards=2, batch_size=16,
        transport="process", data_plane="auto",
    )
    service.submit_many(records)
    stats = service.transport_stats()
    result = service.close()
    assert stats["data_plane"] == "pickle"
    assert result.answers == reference_answers(records)


def test_unknown_data_plane_rejected():
    with pytest.raises(ServiceError):
        AggregationService(
            QUERIES, get_operator("sum"), transport="process",
            data_plane="carrier-pigeon",
        )


class TestSubmitColumnOverTheWire:
    """``SUBMIT_COLUMN`` frames land identically to row submits."""

    def _serve(self):
        service = AggregationService(
            QUERIES, get_operator("sum"), num_shards=2,
            batch_size=16, transport="inline",
        )
        return ServerThread(AggregationServer(service))

    def test_packed_int_column_matches_row_submits(self):
        values = [(i * 37 + 5) % 211 - 105 for i in range(300)]
        with self._serve() as thread:
            with AggregationClient("127.0.0.1", thread.port) as client:
                accepted = client.submit_column("k", values)
                assert accepted == len(values)
                answers, final = client.drain()
        expected = reference_answers([("k", v) for v in values])
        assert answers == expected
        assert final["stats"]["records_submitted"] == len(values)
        # The gateway snapshot rides along on STATS and must carry
        # the transport counters for dashboards.
        assert "transport" in final["stats"]
        assert "data_plane" in final["stats"]["transport"]

    def test_float_and_object_columns_round_trip(self):
        floats = [(i % 13) * 0.5 - 3.0 for i in range(120)]
        mixed = [1, 2.5, 3]  # falls back to the tagged-object payload
        with self._serve() as thread:
            with AggregationClient("127.0.0.1", thread.port) as client:
                assert client.submit_column("f", floats) == len(floats)
                assert client.submit_column("m", mixed) == len(mixed)
                assert client.submit_column("e", []) == 0
                answers, _ = client.drain()
        reference = reference_answers(
            [("f", v) for v in floats] + [("m", v) for v in mixed]
        )
        assert answers == reference
