"""Integration: logical memory follows the §4.2 space formulas.

The Fig. 15 grouping, asserted: Naive ≈ SlickDeque (Inv) at n;
FlatFIT ≈ TwoStacks ≈ DABA at ≈2n; FlatFAT ≈ B-Int at 2·2^⌈log n⌉;
SlickDeque (Non-Inv) below Naive on autocorrelated (real-shaped) data.
"""

from __future__ import annotations

import pytest

from repro.datasets.debs12 import debs12_array
from repro.datasets.adversarial import descending_stream
from repro.metrics.memory import peak_memory_words
from repro.operators.registry import get_operator
from repro.registry import get_algorithm

WINDOW = 1024
STREAM = None  # built lazily in a fixture


@pytest.fixture(scope="module")
def energy():
    return debs12_array(4 * WINDOW, seed=7)


def peak(algorithm, operator_name, stream, window=WINDOW):
    spec = get_algorithm(algorithm)
    aggregator = spec.single(get_operator(operator_name), window)
    return peak_memory_words(aggregator, stream)


def test_naive_and_slickdeque_inv_cost_n(energy):
    assert peak("naive", "sum", energy) == WINDOW
    assert peak("slickdeque", "sum", energy) == WINDOW + 1


def test_2n_group(energy):
    for algorithm in ("flatfit", "twostacks"):
        words = peak(algorithm, "sum", energy)
        assert 2 * WINDOW <= words <= 2 * WINDOW + 64, algorithm
    # DABA: 2n + 4k + 4n/k with k = sqrt(n) -> 2n + 8*sqrt(n) + slack.
    daba = peak("daba", "sum", energy)
    assert 2 * WINDOW <= daba <= 2 * WINDOW + 8 * 32 + 16


def test_tree_group_rounds_to_power_of_two(energy):
    # 1024 is a power of two: both trees cost exactly ~2n here.
    assert peak("flatfat", "sum", energy) == 2 * WINDOW
    assert peak("bint", "sum", energy) == 2 * WINDOW - 1
    # 1025 rounds up: the paper's worst-case-3n sawtooth.
    assert peak("flatfat", "sum", energy, window=WINDOW + 1) == 4 * WINDOW


def test_slickdeque_noninv_beats_naive_on_real_shaped_data(energy):
    """Fig. 15: "outperforming the second best algorithm (Naive)"."""
    slick = peak("slickdeque", "max", energy)
    naive = peak("naive", "max", energy)
    assert slick < naive / 2  # paper: 2x less on average, up to 5x


def test_slickdeque_noninv_worst_case_is_2n_plus_sqrt(energy):
    stream = list(descending_stream(3 * WINDOW))
    words = peak("slickdeque", "max", stream)
    assert 2 * WINDOW <= words <= 2 * WINDOW + 8 * 32 + 16


def test_memory_independent_of_operator_for_uniform_algorithms(energy):
    """The paper combined Sum and Max curves for all but SlickDeque."""
    for algorithm in ("naive", "flatfat", "bint", "flatfit",
                      "twostacks", "daba"):
        assert (
            peak(algorithm, "sum", energy)
            == peak(algorithm, "max", energy)
        ), algorithm
