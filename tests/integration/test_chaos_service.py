"""Integration chaos suite: provoked failures over real worker processes.

The acceptance scenario for the failure-hardening work: with fault
injection enabled — a worker SIGKILL at a chosen batch sequence, a
bit-flipped checkpoint, one poison record per shard, and a stalled
shard — the service terminates within its timeout, clean-key answers
are byte-identical to a fault-free run, poison records land in the
dead-letter sink carrying their originating exception, and a shard
that exhausts its restart budget is reported ``failed`` without
blocking the remaining shards.

Marked ``chaos``: the suite spawns and kills real processes and sleeps
through backoffs/stall timeouts, so CI runs it as a separate job
(``pytest -m chaos``); the default job deselects it.
"""

from __future__ import annotations

import os
import signal
import time

import pytest

from repro.operators.registry import get_operator
from repro.service import AggregationService, FaultInjector, poison
from repro.service.partition import shard_of
from repro.stream.engine import StreamEngine
from repro.stream.sink import CollectSink
from repro.windows.query import Query

pytestmark = [pytest.mark.chaos, pytest.mark.timeout(120)]

QUERIES = (Query(12, 4), Query(8, 2))
NUM_SHARDS = 3


def _records(count):
    # Integers keep cross-shard recombination exact (byte-identical).
    return [
        (f"sensor-{i % 11}", (i * 37 + 5) % 203 - 101)
        for i in range(count)
    ]


def _expected_global(records):
    sink = CollectSink()
    StreamEngine(QUERIES, get_operator("sum"), sinks=[sink]).run(
        value for _, value in records
    )
    return sink.answers


def _expected_per_key(records):
    values_by_key = {}
    for key, value in records:
        values_by_key.setdefault(key, []).append(value)
    expected = {}
    for key, values in values_by_key.items():
        sink = CollectSink()
        StreamEngine(QUERIES, get_operator("sum"), sinks=[sink]).run(
            values
        )
        if sink.answers:
            expected[key] = sink.answers
    return expected


def _wait_snapshot(service, shard_id, seq, timeout=10.0):
    """Poll until the supervisor has absorbed a checkpoint >= ``seq``.

    Checkpoints are absorbed opportunistically during polls, so tests
    that need "a corrupt snapshot is on file before the kill" ordering
    must wait for the absorb rather than assume it.
    """
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        service.poll()
        if service._transport.handles[shard_id].snapshot_seq >= seq:
            return
        time.sleep(0.01)
    raise AssertionError(
        f"shard {shard_id} never checkpointed past seq {seq}"
    )


def _wait_pid_dead(pid, timeout=10.0):
    """Poll until ``pid`` is gone or a zombie awaiting reap.

    SIGKILL delivery is asynchronous: a fixed post-kill sleep races the
    kernel on a loaded runner.  A zombie counts as dead — it can never
    touch its queues again — and we must *not* wait for the reap
    itself, because the supervisor only reaps during the next
    submit/poll, which these tests deliberately hold back.
    """
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        try:
            with open(f"/proc/{pid}/stat", "rb") as stat:
                line = stat.read().decode("ascii", "replace")
        except (FileNotFoundError, ProcessLookupError):
            if not os.path.isdir("/proc"):
                # No procfs (macOS dev boxes): fall back to the old
                # fixed wait rather than skipping it entirely.
                time.sleep(0.05)
            return
        # State is the first field after the parenthesised comm, which
        # may itself contain spaces and parentheses.
        state = line.rpartition(")")[2].split()
        if state and state[0] in ("Z", "X", "x"):
            return
        time.sleep(0.005)
    raise AssertionError(
        f"pid {pid} still running {timeout}s after SIGKILL"
    )


def _prefix_with_n_shard_records(records, shard_id, n):
    """Split so the prefix routes exactly ``n`` records to ``shard_id``.

    Lets a test bound how many batches a shard has shipped before a
    mid-stream fault is triggered — checkpoint-generation tests need
    the corrupt snapshot to still be the *current* one at kill time.
    """
    count = 0
    for index, (key, _) in enumerate(records):
        if shard_of(key, NUM_SHARDS) == shard_id:
            count += 1
            if count == n:
                return records[: index + 1], records[index + 1:]
    raise AssertionError(
        f"stream routes fewer than {n} records to shard {shard_id}"
    )


def test_acceptance_full_chaos_suite():
    """Kill + corrupt checkpoint + poison per shard + stall, all at once."""
    records = _records(420)
    # One poison record per shard, addressed to the first key that
    # hashes to it, spliced into the middle of the stream.
    shard_keys = {}
    for key, _ in records:
        shard_keys.setdefault(shard_of(key, NUM_SHARDS), key)
    assert len(shard_keys) == NUM_SHARDS
    poisoned_keys = set(shard_keys.values())
    poisoned = list(records)
    for shard_id, key in sorted(shard_keys.items()):
        poisoned.insert(
            200 + 40 * shard_id, (key, poison(f"shard-{shard_id}"))
        )

    injector = (
        FaultInjector(seed=42)
        .kill_worker(0, after_seq=4)
        .corrupt_checkpoint(1, nth=2)
        .stall_shard(2, seq=3, seconds=0.2)
    )
    service = AggregationService(
        QUERIES,
        get_operator("sum"),
        num_shards=NUM_SHARDS,
        mode="per_key",
        batch_size=10,
        checkpoint_interval=2,
        restart_backoff=0.0,
        stall_timeout=5.0,
        heartbeat_interval=0.1,
        injector=injector,
    )
    try:
        # Stop ingesting once shard 1 has shipped exactly 4 batches:
        # its 2nd checkpoint (= seq 4, the bit-flipped one) is then the
        # *current* generation when we kill it, so recovery must detect
        # the CRC failure and fall back to the seq-2 generation.
        head, tail = _prefix_with_n_shard_records(poisoned, 1, 40)
        service.submit_many(head)
        _wait_snapshot(service, 1, 4)
        victim = service.shard_pids()[1]
        os.kill(victim, signal.SIGKILL)
        _wait_pid_dead(victim)
        service.submit_many(tail)
        result = service.close(timeout=60.0)
    except BaseException:
        service.abort()
        raise

    # Clean-key answers are byte-identical to a fault-free run.  A
    # poisoned key keeps its exact pre-poison prefix, then is degraded:
    # the engine raised mid-feed, so its state is discarded rather than
    # trusted, and later records for the key are dead-lettered.
    expected = _expected_per_key(records)
    for key, answers in expected.items():
        if key in poisoned_keys:
            produced = result.per_key.get(key, [])
            assert produced == answers[: len(produced)]
        else:
            assert result.per_key.get(key, []) == answers
    assert set(result.stats.degraded_keys) == poisoned_keys
    assert not result.stats.failed_shards

    # Every poison record is quarantined with its originating error;
    # the degraded keys' later records follow it into the sink.
    originating = [
        letter
        for letter in result.dead_letters
        if "poison value" in letter.error
    ]
    assert len(originating) == NUM_SHARDS
    for letter in originating:
        assert f"shard-{letter.shard_id}" in letter.error
        assert letter.key == shard_keys[letter.shard_id]
    assert result.stats.dead_letters == len(result.dead_letters)
    assert result.stats.records_processed == len(poisoned) - len(
        result.dead_letters
    )

    # The scheduled faults actually fired and were survived.
    assert injector.fired("kill"), injector.events
    assert injector.fired("corrupt-checkpoint"), injector.events
    by_shard = {s.shard_id: s for s in result.stats.shards}
    assert by_shard[1].corrupt_checkpoints >= 1
    assert sum(s.restores for s in result.stats.shards) >= 2


def test_corrupt_checkpoint_falls_back_one_generation():
    records = _records(300)
    injector = FaultInjector(seed=9).corrupt_checkpoint(0, nth=3)
    service = AggregationService(
        QUERIES,
        get_operator("sum"),
        num_shards=1,
        batch_size=10,
        checkpoint_interval=2,
        restart_backoff=0.0,
        injector=injector,
    )
    try:
        # 65 records = 6 shipped batches: the corrupt 3rd checkpoint
        # (seq 6) is deterministically current at kill time.
        service.submit_many(records[:65])
        _wait_snapshot(service, 0, 6)
        victim = service.shard_pids()[0]
        os.kill(victim, signal.SIGKILL)
        _wait_pid_dead(victim)
        service.submit_many(records[65:])
        result = service.close(timeout=60.0)
    except BaseException:
        service.abort()
        raise
    assert result.answers == _expected_global(records)
    assert result.stats.shards[0].corrupt_checkpoints == 1
    assert result.stats.shards[0].restores == 1
    assert not result.stats.failed_shards


def test_both_generations_corrupt_fails_the_shard_cleanly():
    """No good checkpoint left: fail the shard, never guess at state."""
    records = _records(300)
    injector = (
        FaultInjector(seed=5)
        .corrupt_checkpoint(0, nth=2)
        .corrupt_checkpoint(0, nth=3)
    )
    service = AggregationService(
        QUERIES,
        get_operator("sum"),
        num_shards=1,
        batch_size=10,
        checkpoint_interval=2,
        restart_backoff=0.0,
        injector=injector,
    )
    try:
        # 6 shipped batches: seq 4 and seq 6 are the only generations
        # on file at kill time, and both are bit-flipped.
        service.submit_many(records[:65])
        _wait_snapshot(service, 0, 6)
        victim = service.shard_pids()[0]
        os.kill(victim, signal.SIGKILL)
        _wait_pid_dead(victim)
        service.submit_many(records[65:])
        result = service.close(timeout=60.0)
    except BaseException:
        service.abort()
        raise
    assert result.stats.failed_shards == (0,)
    assert 0 in service.failed_shards()
    assert "checkpoint" in service.failed_shards()[0]
    assert result.stats.shards[0].corrupt_checkpoints == 2
    # The un-acknowledged backlog is shed to the dead-letter sink, not
    # silently dropped.
    assert result.stats.dead_letters > 0
    assert all(
        "ShardFailedError" in letter.error
        for letter in result.dead_letters
    )


def test_restart_budget_exhaustion_does_not_block_other_shards():
    records = _records(450)
    injector = FaultInjector().crash_loop(1)
    service = AggregationService(
        QUERIES,
        get_operator("sum"),
        num_shards=NUM_SHARDS,
        mode="per_key",
        batch_size=10,
        max_restarts=2,
        restart_backoff=0.0,
        injector=injector,
    )
    try:
        service.submit_many(records)
        result = service.close(timeout=60.0)
    except BaseException:
        service.abort()
        raise

    assert result.stats.failed_shards == (1,)
    assert "restart budget" in service.failed_shards()[1]
    shard1_keys = {
        key for key, _ in records if shard_of(key, NUM_SHARDS) == 1
    }
    assert set(result.stats.degraded_keys) == shard1_keys
    # Clean shards' keys are byte-identical to the fault-free run.
    expected = _expected_per_key(records)
    for key, answers in expected.items():
        if key not in shard1_keys:
            assert result.per_key.get(key, []) == answers
    # The failed shard's backlog is accounted for as dead letters:
    # processed + dead-lettered covers every submitted record.
    assert result.stats.dead_letters > 0
    assert {l.shard_id for l in result.dead_letters} == {1}
    assert (
        result.stats.records_processed + result.stats.dead_letters
        == result.stats.records_submitted
    )
    assert result.stats.degraded


def test_wedged_shard_is_stall_killed_and_recovered():
    records = _records(300)
    injector = FaultInjector().wedge_shard(1, seq=3)
    service = AggregationService(
        QUERIES,
        get_operator("sum"),
        num_shards=NUM_SHARDS,
        batch_size=10,
        checkpoint_interval=2,
        restart_backoff=0.0,
        stall_timeout=1.0,
        heartbeat_interval=0.1,
        injector=injector,
    )
    try:
        service.submit_many(records)
        result = service.close(timeout=60.0)
    except BaseException:
        service.abort()
        raise
    assert result.answers == _expected_global(records)
    assert result.stats.shards[1].stalls >= 1
    assert result.stats.shards[1].restores >= 1
    assert injector.fired("wedge-cleared"), injector.events
    assert not result.stats.failed_shards


def test_sub_timeout_stall_is_tolerated_not_killed():
    """A slow shard is not a dead shard: heartbeats keep it alive."""
    records = _records(200)
    injector = FaultInjector().stall_shard(1, seq=2, seconds=0.4)
    service = AggregationService(
        QUERIES,
        get_operator("sum"),
        num_shards=NUM_SHARDS,
        batch_size=10,
        stall_timeout=5.0,
        heartbeat_interval=0.1,
        injector=injector,
    )
    try:
        service.submit_many(records)
        result = service.close(timeout=60.0)
    except BaseException:
        service.abort()
        raise
    assert result.answers == _expected_global(records)
    assert all(s.stalls == 0 for s in result.stats.shards)
    assert all(s.restores == 0 for s in result.stats.shards)


def test_global_mode_poison_folds_through_a_temporary():
    """A poison record must not corrupt the slice accumulator."""
    records = _records(200)
    poisoned = list(records)
    poisoned.insert(57, ("sensor-3", poison("mid-slice")))
    service = AggregationService(
        QUERIES,
        get_operator("sum"),
        num_shards=NUM_SHARDS,
        batch_size=10,
    )
    try:
        service.submit_many(poisoned)
        result = service.close(timeout=60.0)
    except BaseException:
        service.abort()
        raise
    # The quarantined record's global position was already assigned by
    # the router, so its slot contributes the operator identity: the
    # answers equal a run with the poison *replaced by* identity (0 for
    # sum), proving the accumulator it touched was a temporary.
    neutralised = [
        (key, 0 if key == "sensor-3" and index == 57 else value)
        for index, (key, value) in enumerate(poisoned)
    ]
    assert result.answers == _expected_global(neutralised)
    assert len(result.dead_letters) == 1
    assert result.dead_letters[0].key == "sensor-3"
    assert "mid-slice" in result.dead_letters[0].error
    assert result.stats.records_processed == len(records)
