"""Test package."""
