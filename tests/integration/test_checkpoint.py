"""Integration: checkpoint/restore resume-equivalence for every
algorithm (single and multi-query) and for the shared engine."""

from __future__ import annotations

import pytest

from repro.core.multiquery import SharedSlickDeque
from repro.operators.noninvertible import ArgMaxOperator
from repro.operators.registry import get_operator
from repro.registry import available_algorithms, get_algorithm
from repro.stream.checkpoint import (
    CheckpointError,
    restore,
    snapshot,
)
from repro.windows.query import Query
from tests.conftest import int_stream

STREAM = int_stream(300, seed=77)
SPLIT = 170


@pytest.mark.parametrize("algorithm", available_algorithms())
@pytest.mark.parametrize("operator_name", ["sum", "max"])
def test_single_query_resume_equivalence(algorithm, operator_name):
    spec = get_algorithm(algorithm)
    continuous = spec.single(get_operator(operator_name), 16)
    expected = continuous.run(STREAM)

    subject = spec.single(get_operator(operator_name), 16)
    subject.run(STREAM[:SPLIT])
    resumed = restore(snapshot(subject))
    assert resumed.run(STREAM[SPLIT:]) == expected[SPLIT:]


@pytest.mark.parametrize(
    "algorithm", available_algorithms(multi_query=True)
)
def test_multi_query_resume_equivalence(algorithm):
    spec = get_algorithm(algorithm)
    ranges = [2, 7, 13]
    continuous = spec.multi(get_operator("max"), ranges)
    expected = continuous.run(STREAM)

    subject = spec.multi(get_operator("max"), ranges)
    subject.run(STREAM[:SPLIT])
    resumed = restore(snapshot(subject))
    assert resumed.run(STREAM[SPLIT:]) == expected[SPLIT:]


def test_shared_engine_resume_equivalence():
    queries = [Query(6, 2), Query(8, 4)]
    continuous = SharedSlickDeque(queries, get_operator("sum"))
    expected = list(continuous.run(STREAM))

    subject = SharedSlickDeque(queries, get_operator("sum"))
    consumed = list(subject.run(STREAM[:SPLIT]))
    resumed = restore(snapshot(subject))
    tail = list(resumed.run(STREAM[SPLIT:]))
    assert consumed + tail == expected


def test_type_check_on_restore():
    spec = get_algorithm("naive")
    data = snapshot(spec.single(get_operator("sum"), 4))
    with pytest.raises(CheckpointError, match="expected"):
        restore(data, expected_type="DABAAggregator")
    assert restore(data, expected_type="NaiveAggregator") is not None


def test_corrupt_data_rejected():
    with pytest.raises(CheckpointError, match="not a repro checkpoint"):
        restore(b"garbage bytes here")


def test_truncated_payload_rejected():
    spec = get_algorithm("naive")
    data = snapshot(spec.single(get_operator("sum"), 4))
    with pytest.raises(CheckpointError, match="corrupt"):
        restore(data[:-7])


def test_version_mismatch_rejected():
    import pickle

    from repro.stream import checkpoint

    header = pickle.dumps(
        {"magic": b"repro-ckpt", "version": 99, "type": "X"}
    )
    data = len(header).to_bytes(4, "big") + header + b""
    with pytest.raises(CheckpointError, match="format v99"):
        checkpoint.restore(data)


def test_lambda_key_operator_fails_loudly():
    from repro.core.slickdeque_noninv import SlickDequeNonInv

    aggregator = SlickDequeNonInv(
        ArgMaxOperator(lambda x: x * x), 8
    )
    aggregator.push(3)
    with pytest.raises(CheckpointError, match="cannot snapshot"):
        snapshot(aggregator)


def test_file_round_trip(tmp_path):
    from repro.stream.checkpoint import load, save

    spec = get_algorithm("slickdeque")
    aggregator = spec.single(get_operator("sum"), 8)
    aggregator.run(STREAM[:50])
    path = tmp_path / "window.ckpt"
    with open(path, "wb") as handle:
        save(aggregator, handle)
    with open(path, "rb") as handle:
        resumed = load(handle, expected_type="SlickDequeInv")
    assert resumed.query() == aggregator.query()
