"""Integration: measured growth curves land in their Table 1 classes.

The strongest asymptotic statement the reproduction makes: fitting the
*measured* per-slide operation counts across a window sweep classifies
every algorithm into exactly the complexity class Table 1 assigns.
"""

from __future__ import annotations

import pytest

from repro.metrics.complexity_fit import (
    classify_algorithm_space,
    classify_algorithm_time,
    classify_growth,
)


class TestClassifier:
    def test_constant(self):
        assert classify_growth({8: 5.0, 32: 5.0, 128: 5.0}).model == "1"

    def test_linear(self):
        points = {n: 3.0 * n + 2 for n in (8, 16, 64, 256)}
        assert classify_growth(points).model == "n"

    def test_log(self):
        import math

        points = {n: 2 * math.log2(n) for n in (8, 32, 128, 512)}
        assert classify_growth(points).model == "log n"

    def test_quadratic(self):
        points = {n: n * n / 2 for n in (8, 16, 64, 256)}
        assert classify_growth(points).model == "n^2"

    def test_n_log_n(self):
        import math

        points = {n: n * math.log2(n) for n in (8, 32, 128, 512)}
        assert classify_growth(points).model == "n log n"

    def test_needs_enough_points(self):
        with pytest.raises(ValueError, match="3 sweep points"):
            classify_growth({8: 1.0, 16: 2.0})
        with pytest.raises(ValueError, match="4x window range"):
            classify_growth({8: 1.0, 12: 2.0, 16: 3.0})


#: Table 1's single-query classes (amortized).
SINGLE_QUERY_CLASSES = {
    ("naive", "sum"): "n",
    ("flatfat", "sum"): "log n",
    ("bint", "sum"): "log n",
    ("flatfit", "sum"): "1",
    ("twostacks", "sum"): "1",
    ("daba", "sum"): "1",
    ("slickdeque", "sum"): "1",
    ("slickdeque", "max"): "1",
}


@pytest.mark.parametrize(
    "algorithm,operator_name",
    sorted(SINGLE_QUERY_CLASSES),
    ids=[f"{a}-{o}" for a, o in sorted(SINGLE_QUERY_CLASSES)],
)
def test_single_query_time_class(algorithm, operator_name):
    fit = classify_algorithm_time(algorithm, operator_name)
    assert fit.model == SINGLE_QUERY_CLASSES[(algorithm, operator_name)]


#: Table 1's max-multi-query classes (amortized).
MULTI_QUERY_CLASSES = {
    ("naive", "sum"): "n^2",
    ("flatfat", "sum"): "n log n",
    ("flatfit", "sum"): "n",
    ("slickdeque", "sum"): "n",  # 2n exactly
    ("slickdeque", "max"): "1",  # the deque sweep is op-free
}


@pytest.mark.parametrize(
    "algorithm,operator_name",
    sorted(MULTI_QUERY_CLASSES),
    ids=[f"{a}-{o}" for a, o in sorted(MULTI_QUERY_CLASSES)],
)
def test_multi_query_time_class(algorithm, operator_name):
    fit = classify_algorithm_time(
        algorithm,
        operator_name,
        windows=(8, 16, 32, 64),
        multi_query=True,
    )
    assert fit.model == MULTI_QUERY_CLASSES[(algorithm, operator_name)]


#: §4.2 space classes: everything linear except the non-inv deque on
#: random input, whose occupancy grows sub-linearly.
SPACE_CLASSES = {
    "naive": "n",
    "flatfat": "n",
    "bint": "n",
    "flatfit": "n",
    "twostacks": "n",
    "daba": "n",
}


@pytest.mark.parametrize("algorithm", sorted(SPACE_CLASSES))
def test_space_class(algorithm):
    fit = classify_algorithm_space(algorithm)
    assert fit.model == SPACE_CLASSES[algorithm]


def test_slickdeque_noninv_space_sublinear_on_random_input():
    fit = classify_algorithm_space("slickdeque", operator_name="max")
    assert fit.model in ("1", "log n")
