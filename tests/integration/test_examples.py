"""Integration: every shipped example runs cleanly end-to-end."""

from __future__ import annotations

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = sorted(
    (pathlib.Path(__file__).parent.parent.parent / "examples").glob(
        "*.py"
    )
)


def test_examples_directory_has_the_promised_scripts():
    names = {path.name for path in EXAMPLES}
    assert "quickstart.py" in names
    assert len(names) >= 3  # deliverable: at least three examples


@pytest.mark.parametrize(
    "example", EXAMPLES, ids=[path.stem for path in EXAMPLES]
)
def test_example_runs_without_error(example):
    arguments = [sys.executable, str(example)]
    if example.stem == "algorithm_comparison":
        arguments += ["64", "3000"]  # keep the naive row fast
    completed = subprocess.run(
        arguments,
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert completed.returncode == 0, completed.stderr
    assert completed.stdout.strip(), "examples must narrate their run"


def test_quickstart_reproduces_paper_example_2():
    completed = subprocess.run(
        [sys.executable, str(EXAMPLES[[p.stem for p in EXAMPLES]
                                      .index("quickstart")])],
        capture_output=True,
        text=True,
        timeout=120,
    )
    # The Figure 8/9 streams: Sum answers 6, 11, 11, 6 ... and the
    # shared-plan section prints the Example 1 ACQs.
    assert "sum(last 3)=11" in completed.stdout
    assert "max(last 3)=5" in completed.stdout
    assert "q6/2" in completed.stdout and "q8/4" in completed.stdout
