"""Integration: subsystems composed in ways the units never exercise.

Each test threads three or more subsystems together — the kind of
composition a downstream adopter would actually write.
"""

from __future__ import annotations

import pytest

from repro.datasets.debs12 import debs12_events
from repro.operators.registry import get_operator
from repro.stream.checkpoint import restore, snapshot
from repro.stream.engine import StreamEngine
from repro.stream.sink import CollectSink, LatestSink
from repro.stream.source import from_events, reordered
from repro.windows.compatibility import AcqSpec, CompatibleSharedEngine
from repro.windows.query import Query
from repro.windows.timebased import TimeQuery, TimeWindowEngine
from tests.conftest import int_stream


def test_reordered_network_feed_into_shared_engine():
    """Out-of-order network tuples → reorder → shared plan → sinks."""
    values = int_stream(120, seed=91)
    # Late-by-up-to-2 network delivery.
    positioned = []
    for i in range(0, 120, 3):
        chunk = [(i + 3, values[i + 2]), (i + 1, values[i]),
                 (i + 2, values[i + 1])]
        positioned.extend(chunk)
    collect, latest = CollectSink(), LatestSink()
    engine = StreamEngine(
        [Query(6, 3), Query(12, 6)],
        get_operator("max"),
        sinks=[collect, latest],
    )
    engine.run(reordered(positioned, slack=3))
    assert engine.tuples_consumed == 120
    # The collected answers equal in-order brute force.
    for position, query, answer in collect.answers:
        window = values[max(0, position - query.range_size):position]
        assert answer == max(window)
    # The dashboard sink holds the final answer per query.
    for query, (position, answer) in latest.latest.items():
        assert position == 120
        assert answer == max(values[120 - query.range_size:])


def test_checkpointed_compatible_engine_resumes():
    """Operator-sharing engine + checkpoint mid-stream."""
    values = int_stream(160, seed=92)
    specs = [
        AcqSpec(Query(8, 4), "mean"),
        AcqSpec(Query(8, 4), "sum"),
        AcqSpec(Query(16, 8), "variance"),
    ]
    continuous = CompatibleSharedEngine(specs)
    expected = list(continuous.run(values))

    subject = CompatibleSharedEngine(specs)
    head = list(subject.run(values[:90]))
    subject = restore(snapshot(subject))
    tail = list(subject.run(values[90:]))
    got = head + tail
    assert [(p, s.label) for p, s, _ in got] == [
        (p, s.label) for p, s, _ in expected
    ]
    for (_, _, a), (_, _, b) in zip(got, expected):
        assert a == pytest.approx(b)


def test_time_engine_from_sensor_events_with_checkpoint():
    """DEBS12 events → time windows → checkpoint → resume."""
    events = list(debs12_events(800, seed=9, include_states=False))
    stream = [(e.timestamp, e.energy[2]) for e in events]
    queries = [TimeQuery(2.0, 1.0, name="peak2s")]

    continuous = TimeWindowEngine(queries, get_operator("max"))
    expected = [
        (round(t, 6), a) for t, _, a in continuous.run(stream)
    ]

    subject = TimeWindowEngine(queries, get_operator("max"))
    head = [
        (round(t, 6), a) for t, _, a in
        (answer for ts, v in stream[:500]
         for answer in subject.feed(ts, v))
    ]
    subject = restore(snapshot(subject))
    tail = [
        (round(t, 6), a) for t, _, a in
        (answer for ts, v in stream[500:]
         for answer in subject.feed(ts, v))
    ]
    tail += [(round(t, 6), a) for t, _, a in subject.finish()]
    assert head + tail == expected


def test_event_source_extraction_matches_manual():
    events = list(debs12_events(50, seed=10, include_states=False))
    extracted = list(from_events(events, reading=1))
    assert extracted == [e.energy[1] for e in events]
