"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import random

import pytest

from repro.operators.registry import available_operators, get_operator


@pytest.fixture
def rng():
    """A seeded Random instance; tests stay deterministic."""
    return random.Random(0xC0FFEE)


@pytest.fixture(params=["sum", "max", "min", "mean", "count"])
def operator_name(request):
    """A representative spread of operator kinds."""
    return request.param


@pytest.fixture
def operator(operator_name):
    return get_operator(operator_name)


def int_stream(length: int, seed: int = 1, low: int = -50, high: int = 50):
    """Deterministic integer stream (exact arithmetic, no float fuzz)."""
    rng = random.Random(seed)
    return [rng.randint(low, high) for _ in range(length)]


def all_operator_names():
    """Every registered operator name (registry round-trip helper)."""
    return available_operators()
