"""Shared fixtures and helpers for the test suite.

Also provides a minimal fallback for ``@pytest.mark.timeout`` when the
``pytest-timeout`` plugin is not installed (CI installs it; bare local
environments may not): a SIGALRM-based per-test alarm turns a wedged
multiprocess test into a failure in seconds instead of a hung run.
"""

from __future__ import annotations

import importlib.util
import random
import signal

import pytest

from repro.operators.registry import available_operators, get_operator

_HAS_TIMEOUT_PLUGIN = (
    importlib.util.find_spec("pytest_timeout") is not None
)


def pytest_configure(config):
    """Register the ``timeout`` marker when the real plugin is absent."""
    if not _HAS_TIMEOUT_PLUGIN:
        config.addinivalue_line(
            "markers",
            "timeout(seconds): per-test time limit "
            "(SIGALRM fallback; install pytest-timeout for the real one)",
        )


@pytest.hookimpl(hookwrapper=True)
def pytest_runtest_call(item):
    """Enforce ``@pytest.mark.timeout`` via SIGALRM when unplugged."""
    marker = item.get_closest_marker("timeout")
    if (
        marker is None
        or _HAS_TIMEOUT_PLUGIN
        or not hasattr(signal, "SIGALRM")
    ):
        yield
        return
    seconds = float(marker.args[0]) if marker.args else 60.0

    def _expired(signum, frame):
        raise TimeoutError(
            f"test exceeded its {seconds:g}s timeout mark"
        )

    previous = signal.signal(signal.SIGALRM, _expired)
    signal.setitimer(signal.ITIMER_REAL, seconds)
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0)
        signal.signal(signal.SIGALRM, previous)


@pytest.fixture
def rng():
    """A seeded Random instance; tests stay deterministic."""
    return random.Random(0xC0FFEE)


@pytest.fixture(params=["sum", "max", "min", "mean", "count"])
def operator_name(request):
    """A representative spread of operator kinds."""
    return request.param


@pytest.fixture
def operator(operator_name):
    return get_operator(operator_name)


def int_stream(length: int, seed: int = 1, low: int = -50, high: int = 50):
    """Deterministic integer stream (exact arithmetic, no float fuzz)."""
    rng = random.Random(seed)
    return [rng.randint(low, high) for _ in range(length)]


def all_operator_names():
    """Every registered operator name (registry round-trip helper)."""
    return available_operators()
