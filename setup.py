"""Setuptools shim.

All metadata lives in pyproject.toml; this file exists so editable
installs work on toolchains without the ``wheel`` package (offline
environments), via ``pip install -e . --no-build-isolation``.
"""

from setuptools import setup

setup()
